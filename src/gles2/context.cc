#include "gles2/context.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>

#include "common/fault.h"
#include "common/strings.h"
#include "common/threadpool.h"
#include "gles2/cmdstream.h"
#include "gles2/raster.h"
#include "gles2/tiler.h"
#include "glsl/compile.h"

namespace mgpu::gles2 {

using glsl::BaseType;
using glsl::Value;

// The raster layer's batch width and the VM's lane count must agree: the
// flush path hands a FragmentBatch's lanes straight to VmExec::RunBatch.
static_assert(kFragBatchWidth == glsl::kVmLanes,
              "fragment batch width must match the VM lane width");

namespace {
// Watchdog trip message: the budget is a per-draw total, so one string
// serves the vertex and fragment stages.
constexpr const char kBudgetMsg[] =
    "draw exceeded the per-draw ALU-op watchdog budget (MGPU_DRAW_BUDGET)";
}  // namespace

ShadeStateCache::WorkerState::~WorkerState() {
  if (engine_owned == nullptr && engine != nullptr) {
    engine->SetTextureFn(glsl::TextureFn{});
  }
  // A borrowed engine (the program's own fvm) outlives this slot; detach any
  // compiled module so a later interpreter-engine draw is not jitted.
  if (engine_owned == nullptr && vm != nullptr) {
    vm->SetJit(nullptr);
  }
}

ShadeStateCache::Entry* ShadeStateCache::Find(GLuint program, int threads) {
  const auto it = entries_.find({program, threads});
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  it->second.last_use = ++use_tick_;
  return &it->second;
}

ShadeStateCache::Entry& ShadeStateCache::Insert(GLuint program, int threads) {
  Entry& e = entries_[{program, threads}];
  e.last_use = ++use_tick_;
  if (entries_.size() > capacity_) {
    // Evict the least-recently-drawn entry (never the one just touched).
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (&it->second == &e) continue;
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim != entries_.end()) {
      entries_.erase(victim);
      ++evictions_;
    }
  }
  return e;
}

ShadeStateCache::VertexState* ShadeStateCache::FindVertex(GLuint program) {
  const auto it = vertex_entries_.find(program);
  if (it == vertex_entries_.end()) return nullptr;
  it->second.last_use = ++use_tick_;
  return &it->second;
}

ShadeStateCache::VertexState& ShadeStateCache::InsertVertex(GLuint program) {
  VertexState& e = vertex_entries_[program];
  e.last_use = ++use_tick_;
  if (vertex_entries_.size() > capacity_) {
    auto victim = vertex_entries_.end();
    for (auto it = vertex_entries_.begin(); it != vertex_entries_.end();
         ++it) {
      if (&it->second == &e) continue;
      if (victim == vertex_entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    // Not tallied in evictions_: that counter tracks worker-entry
    // behaviour for the cache tests.
    if (victim != vertex_entries_.end()) vertex_entries_.erase(victim);
  }
  return e;
}

void ShadeStateCache::InvalidateProgram(GLuint program) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    it = it->first.first == program ? entries_.erase(it) : std::next(it);
  }
  vertex_entries_.erase(program);
}

Context::Context(const ContextConfig& config, glsl::AluModel* alu)
    : config_(config), alu_(alu != nullptr ? alu : &default_alu_) {
  simd_level_ = glsl::simd::Resolve(config_.simd);
  // Resolve the compiled-engine availability once (knob + MGPU_JIT env +
  // toolchain probe); kCompiled draws fall back to the batched interpreter
  // when this is false.
  jit_enabled_ = glsl::jit::Resolve(config_.jit);
  // Vertex-stage batching knob: an explicit 0/1 wins; -1 = auto (the
  // MGPU_VERTEX_BATCH env override if set, else on). Mirrors simd/jit.
  vertex_batch_enabled_ = config_.vertex_batch != 0;
  if (config_.vertex_batch < 0) {
    if (const char* env = std::getenv("MGPU_VERTEX_BATCH")) {
      vertex_batch_enabled_ = std::strtol(env, nullptr, 10) != 0;
    }
  }
  config_.fragment_batch_width =
      std::clamp(config_.fragment_batch_width, 1, kFragBatchWidth);
  shade_cache_.SetCapacity(
      static_cast<std::size_t>(std::max(config_.shade_cache_capacity, 1)));
  draw_budget_ = config_.draw_budget;
  if (const char* env = std::getenv("MGPU_DRAW_BUDGET")) {
    draw_budget_ = std::strtoull(env, nullptr, 10);
  }
  attribs_.resize(static_cast<std::size_t>(config_.limits.max_vertex_attribs));
  fb_color_.assign(
      static_cast<std::size_t>(config_.width) * config_.height * 4, 0);
  if (config_.has_depth) {
    fb_depth_.assign(static_cast<std::size_t>(config_.width) * config_.height,
                     1.0f);
  }
  vp_w_ = config_.width;
  vp_h_ = config_.height;
  sc_w_ = config_.width;
  sc_h_ = config_.height;
  // Command-stream knob: an explicit 0/1 wins; -1 = auto (the MGPU_ASYNC
  // env override if set, else on). Mirrors simd/jit/vertex_batch. Created
  // last: from here on client calls may be recorded.
  bool async = config_.async_submit != 0;
  if (config_.async_submit < 0) {
    if (const char* env = std::getenv("MGPU_ASYNC")) {
      async = std::strtol(env, nullptr, 10) != 0;
    }
  }
  if (async) {
    record_ = std::make_unique<cmd::CommandQueue>(this, attribs_.size());
  }
}

Context::~Context() {
  // Drain and unregister the recording queue while every other member is
  // still alive — the device thread may be mid-draw against them.
  record_.reset();
}

bool Context::Recording() const {
  return record_ != nullptr && record_->Recording();
}

void Context::Sync() {
  if (record_ == nullptr || !record_->Recording()) return;
  record_->NoteSyncPoint();
  record_->Flush();
  record_->Join();
  if (record_->TakeSubmitFailure()) {
    // A dropped list is an implementation failure the client did nothing
    // to cause: same contract as any other mid-draw resource failure.
    last_draw_error_ = "async command-list submission failed";
    reset_status_ = GL_INNOCENT_CONTEXT_RESET;
    SetError(GL_OUT_OF_MEMORY);
  }
}

void Context::Finish() { Sync(); }

void Context::Flush() {
  if (Recording()) record_->Flush();
}

cmd::Stats Context::command_stream_stats() {
  Sync();
  return record_ != nullptr ? record_->stats() : cmd::Stats{};
}

// Instrumentation / configuration accessors: each observes or rewires state
// that deferred draws read, so each is a sync point.
glsl::AluModel& Context::alu() {
  Sync();
  return *alu_;
}

void Context::SetExecEngine(ExecEngine engine) {
  Sync();
  config_.exec_engine = engine;
  shade_cache_.Clear();
}

void Context::SetShaderThreads(int n) {
  Sync();
  config_.shader_threads = n;
  shade_cache_.Clear();
}

const ShadeStateCache& Context::shade_state_cache() {
  Sync();
  return shade_cache_;
}

const std::string& Context::last_draw_error() {
  Sync();
  return last_draw_error_;
}

void Context::SetDrawBudget(std::uint64_t ops) {
  Sync();
  draw_budget_ = ops;
}

void Context::ReplayRecordedDraw(
    GLenum mode, GLint first, GLsizei count, bool elements, GLenum index_type,
    std::shared_ptr<std::vector<std::uint8_t>> indices,
    std::shared_ptr<std::vector<cmd::AttribCopy>> copies) {
  // Swap the record-time client-array snapshots into the attribute
  // bindings, run the draw inline (we are on the device thread, so the
  // public entry points execute immediately), then restore. The restored
  // values are re-read here rather than captured at record time: preceding
  // recorded commands legitimately mutate the bindings.
  struct Saved {
    GLuint index;
    const void* pointer;
    GLuint buffer;
  };
  std::vector<Saved> saved;
  if (copies != nullptr) {
    saved.reserve(copies->size());
    for (const cmd::AttribCopy& c : *copies) {
      AttribState& a = attribs_[c.index];
      saved.push_back(Saved{c.index, a.pointer, a.buffer});
      a.buffer = 0;
      a.pointer = c.bytes->data();
    }
  }
  if (elements) {
    DrawElements(mode, count, index_type,
                 indices != nullptr ? indices->data() : nullptr);
  } else {
    DrawArrays(mode, first, count);
  }
  for (const Saved& s : saved) {
    attribs_[s.index].pointer = s.pointer;
    attribs_[s.index].buffer = s.buffer;
  }
}

void Context::SetError(GLenum e) {
  if (error_ == GL_NO_ERROR) error_ = e;
}

GLenum Context::GetError() {
  Sync();
  const GLenum e = error_;
  error_ = GL_NO_ERROR;
  return e;
}

GLenum Context::GetGraphicsResetStatus() {
  Sync();
  const GLenum s = reset_status_;
  reset_status_ = GL_NO_ERROR;
  return s;
}

// ---------------------------------------------------------------------------
// State
// ---------------------------------------------------------------------------

void Context::Enable(GLenum cap) {
  if (Recording()) {
    record_->Enable(cap);
    return;
  }
  switch (cap) {
    case GL_SCISSOR_TEST: scissor_enabled_ = true; break;
    case GL_DEPTH_TEST: depth_enabled_ = true; break;
    case GL_BLEND: blend_enabled_ = true; break;
    case GL_CULL_FACE: cull_enabled_ = true; break;
    case GL_DITHER: break;  // accepted, no-op
    default: SetError(GL_INVALID_ENUM);
  }
}

void Context::Disable(GLenum cap) {
  if (Recording()) {
    record_->Disable(cap);
    return;
  }
  switch (cap) {
    case GL_SCISSOR_TEST: scissor_enabled_ = false; break;
    case GL_DEPTH_TEST: depth_enabled_ = false; break;
    case GL_BLEND: blend_enabled_ = false; break;
    case GL_CULL_FACE: cull_enabled_ = false; break;
    case GL_DITHER: break;
    default: SetError(GL_INVALID_ENUM);
  }
}

void Context::Viewport(GLint x, GLint y, GLsizei w, GLsizei h) {
  if (Recording()) {
    record_->Viewport(x, y, w, h);
    return;
  }
  if (w < 0 || h < 0) {
    SetError(GL_INVALID_VALUE);
    return;
  }
  vp_x_ = x; vp_y_ = y; vp_w_ = w; vp_h_ = h;
}

void Context::Scissor(GLint x, GLint y, GLsizei w, GLsizei h) {
  if (Recording()) {
    record_->Scissor(x, y, w, h);
    return;
  }
  if (w < 0 || h < 0) {
    SetError(GL_INVALID_VALUE);
    return;
  }
  sc_x_ = x; sc_y_ = y; sc_w_ = w; sc_h_ = h;
}

void Context::ClearColor(GLfloat r, GLfloat g, GLfloat b, GLfloat a) {
  if (Recording()) {
    record_->ClearColor(r, g, b, a);
    return;
  }
  clear_color_ ={std::clamp(r, 0.0f, 1.0f), std::clamp(g, 0.0f, 1.0f),
                  std::clamp(b, 0.0f, 1.0f), std::clamp(a, 0.0f, 1.0f)};
}

void Context::BlendFunc(GLenum src, GLenum dst) {
  if (Recording()) {
    record_->BlendFunc(src, dst);
    return;
  }
  blend_src_ = src;
  blend_dst_ = dst;
}

void Context::DepthFunc(GLenum func) {
  if (Recording()) {
    record_->DepthFunc(func);
    return;
  }
  if (func < GL_NEVER || func > GL_ALWAYS) {
    SetError(GL_INVALID_ENUM);
    return;
  }
  depth_func_ = func;
}

void Context::DepthMask(GLboolean flag) {
  if (Recording()) {
    record_->DepthMask(flag);
    return;
  }
  depth_write_ = flag != GL_FALSE;
}

void Context::ColorMask(GLboolean r, GLboolean g, GLboolean b, GLboolean a) {
  if (Recording()) {
    record_->ColorMask(r, g, b, a);
    return;
  }
  color_mask_ = {r != GL_FALSE, g != GL_FALSE, b != GL_FALSE, a != GL_FALSE};
}

void Context::CullFace(GLenum mode) {
  if (Recording()) {
    record_->CullFace(mode);
    return;
  }
  if (mode != GL_FRONT && mode != GL_BACK && mode != GL_FRONT_AND_BACK) {
    SetError(GL_INVALID_ENUM);
    return;
  }
  cull_face_ = mode;
}

void Context::FrontFace(GLenum dir) {
  if (Recording()) {
    record_->FrontFace(dir);
    return;
  }
  if (dir != GL_CW && dir != GL_CCW) {
    SetError(GL_INVALID_ENUM);
    return;
  }
  front_face_ = dir;
}

void Context::PixelStorei(GLenum pname, GLint value) {
  if (Recording()) {
    record_->PixelStorei(pname, value);
    return;
  }
  if (value != 1 && value != 2 && value != 4 && value != 8) {
    SetError(GL_INVALID_VALUE);
    return;
  }
  if (pname == GL_UNPACK_ALIGNMENT) {
    unpack_alignment_ = value;
  } else if (pname == GL_PACK_ALIGNMENT) {
    pack_alignment_ = value;
  } else {
    SetError(GL_INVALID_ENUM);
  }
}

void Context::GetIntegerv(GLenum pname, GLint* params) {
  Sync();
  const glsl::Limits& lim = config_.limits;
  switch (pname) {
    case GL_MAX_TEXTURE_SIZE: *params = config_.max_texture_size; break;
    case GL_MAX_VERTEX_ATTRIBS: *params = lim.max_vertex_attribs; break;
    case GL_MAX_VARYING_VECTORS: *params = lim.max_varying_vectors; break;
    case GL_MAX_VERTEX_UNIFORM_VECTORS:
      *params = lim.max_vertex_uniform_vectors;
      break;
    case GL_MAX_FRAGMENT_UNIFORM_VECTORS:
      *params = lim.max_fragment_uniform_vectors;
      break;
    case GL_MAX_TEXTURE_IMAGE_UNITS:
      *params = lim.max_texture_image_units;
      break;
    case GL_MAX_VERTEX_TEXTURE_IMAGE_UNITS:
      *params = lim.max_vertex_texture_image_units;
      break;
    case GL_MAX_COMBINED_TEXTURE_IMAGE_UNITS:
      *params = lim.max_texture_image_units +
                lim.max_vertex_texture_image_units;
      break;
    case GL_IMPLEMENTATION_COLOR_READ_FORMAT: *params = GL_RGBA; break;
    case GL_IMPLEMENTATION_COLOR_READ_TYPE: *params = GL_UNSIGNED_BYTE; break;
    case GL_VIEWPORT:
      params[0] = vp_x_; params[1] = vp_y_;
      params[2] = vp_w_; params[3] = vp_h_;
      break;
    default:
      SetError(GL_INVALID_ENUM);
  }
}

const char* Context::GetString(GLenum name) {
  Sync();
  switch (name) {
    case GL_VENDOR: return "mgpu";
    case GL_RENDERER: return config_.renderer_name.c_str();
    case GL_VERSION: return "OpenGL ES 2.0 (mgpu simulator)";
    case GL_SHADING_LANGUAGE_VERSION: return "OpenGL ES GLSL ES 1.00";
    case GL_EXTENSIONS: return "";  // deliberately none: the paper's setting
    default:
      SetError(GL_INVALID_ENUM);
      return "";
  }
}

void Context::GetShaderPrecisionFormat(GLenum shader_type,
                                       GLenum precision_type, GLint* range,
                                       GLint* precision) {
  Sync();
  if (shader_type != GL_VERTEX_SHADER && shader_type != GL_FRAGMENT_SHADER) {
    SetError(GL_INVALID_ENUM);
    return;
  }
  const bool fragment = shader_type == GL_FRAGMENT_SHADER;
  switch (precision_type) {
    case GL_HIGH_FLOAT:
      if (fragment && !config_.limits.fragment_highp_float) {
        range[0] = range[1] = 0;
        *precision = 0;  // unsupported (paper §IV-E footnote 1)
      } else {
        range[0] = range[1] = 127;
        *precision = 23;  // IEEE-754-sized mantissa, as on VideoCore IV
      }
      return;
    case GL_MEDIUM_FLOAT:
      range[0] = range[1] = 15;
      *precision = 10;
      return;
    case GL_LOW_FLOAT:
      range[0] = range[1] = 1;
      *precision = 8;
      return;
    case GL_HIGH_INT:
      range[0] = range[1] = 24;
      *precision = 0;
      return;
    case GL_MEDIUM_INT:
      range[0] = range[1] = 10;
      *precision = 0;
      return;
    case GL_LOW_INT:
      range[0] = range[1] = 8;
      *precision = 0;
      return;
    default:
      SetError(GL_INVALID_ENUM);
  }
}

// ---------------------------------------------------------------------------
// Shaders & programs
// ---------------------------------------------------------------------------

ShaderObject* Context::GetShader(GLuint id) {
  const auto it = shaders_.find(id);
  return it != shaders_.end() ? it->second.get() : nullptr;
}

ProgramObject* Context::GetProgram(GLuint id) {
  const auto it = programs_.find(id);
  return it != programs_.end() ? it->second.get() : nullptr;
}

GLuint Context::CreateShader(GLenum type) {
  // Returns a fresh id, so it must observe every deferred create/delete.
  Sync();
  if (type != GL_VERTEX_SHADER && type != GL_FRAGMENT_SHADER) {
    SetError(GL_INVALID_ENUM);
    return 0;
  }
  const GLuint id = next_id_++;
  auto obj = std::make_unique<ShaderObject>();
  obj->type = type;
  shaders_[id] = std::move(obj);
  return id;
}

void Context::ShaderSource(GLuint shader, const std::string& source) {
  if (Recording()) {
    record_->Push([shader, source](Context& c) { c.ShaderSource(shader, source); });
    return;
  }
  ShaderObject* s = GetShader(shader);
  if (s == nullptr) {
    SetError(GL_INVALID_VALUE);
    return;
  }
  s->source = source;
}

void Context::CompileShader(GLuint shader) {
  if (Recording()) {
    record_->Push([shader](Context& c) { c.CompileShader(shader); });
    return;
  }
  ShaderObject* s = GetShader(shader);
  if (s == nullptr) {
    SetError(GL_INVALID_VALUE);
    return;
  }
  s->compile_attempted = true;
  glsl::CompileResult r = glsl::CompileGlsl(
      s->source,
      s->type == GL_VERTEX_SHADER ? glsl::Stage::kVertex
                                  : glsl::Stage::kFragment,
      config_.limits);
  s->compile_ok = r.ok;
  s->info_log = r.info_log;
  s->compiled = std::move(r.shader);
}

void Context::GetShaderiv(GLuint shader, GLenum pname, GLint* params) {
  Sync();
  ShaderObject* s = GetShader(shader);
  if (s == nullptr) {
    SetError(GL_INVALID_VALUE);
    return;
  }
  switch (pname) {
    case GL_COMPILE_STATUS: *params = s->compile_ok ? GL_TRUE : GL_FALSE; break;
    case GL_SHADER_TYPE: *params = static_cast<GLint>(s->type); break;
    case GL_INFO_LOG_LENGTH:
      *params = static_cast<GLint>(s->info_log.size()) + 1;
      break;
    case GL_SHADER_SOURCE_LENGTH:
      *params = static_cast<GLint>(s->source.size()) + 1;
      break;
    case GL_DELETE_STATUS: *params = GL_FALSE; break;
    default: SetError(GL_INVALID_ENUM);
  }
}

std::string Context::GetShaderInfoLog(GLuint shader) {
  Sync();
  ShaderObject* s = GetShader(shader);
  if (s == nullptr) {
    SetError(GL_INVALID_VALUE);
    return {};
  }
  return s->info_log;
}

void Context::DeleteShader(GLuint shader) {
  if (Recording()) {
    record_->Push([shader](Context& c) { c.DeleteShader(shader); });
    return;
  }
  shaders_.erase(shader);
}

GLuint Context::CreateProgram() {
  Sync();
  const GLuint id = next_id_++;
  programs_[id] = std::make_unique<ProgramObject>();
  return id;
}

void Context::AttachShader(GLuint program, GLuint shader) {
  if (Recording()) {
    record_->Push([program, shader](Context& c) { c.AttachShader(program, shader); });
    return;
  }
  ProgramObject* p = GetProgram(program);
  ShaderObject* s = GetShader(shader);
  if (p == nullptr || s == nullptr) {
    SetError(GL_INVALID_VALUE);
    return;
  }
  if (s->type == GL_VERTEX_SHADER) {
    p->vertex_shader = shader;
  } else {
    p->fragment_shader = shader;
  }
}

void Context::BindAttribLocation(GLuint program, GLuint index,
                                 const std::string& name) {
  if (Recording()) {
    record_->Push([program, index, name](Context& c) {
      c.BindAttribLocation(program, index, name);
    });
    return;
  }
  ProgramObject* p = GetProgram(program);
  if (p == nullptr) {
    SetError(GL_INVALID_VALUE);
    return;
  }
  if (name.rfind("gl_", 0) == 0) {
    SetError(GL_INVALID_OPERATION);
    return;
  }
  p->bound_attribs[name] = static_cast<GLint>(index);
}

void Context::LinkProgram(GLuint program) {
  if (Recording()) {
    record_->Push([program](Context& c) { c.LinkProgram(program); });
    return;
  }
  ProgramObject* p = GetProgram(program);
  if (p == nullptr) {
    SetError(GL_INVALID_VALUE);
    return;
  }
  // Cached worker clones pin the program's old bytecode and globals; a
  // relink (successful or not) makes them stale.
  shade_cache_.InvalidateProgram(program);
  gles2::LinkProgram(*p, shaders_, *alu_, config_.limits);
  // Stamp the context's resolved SIMD tier onto the fresh engines; worker
  // clones built from fvm inherit it at construction.
  if (p->link_ok) {
    p->vvm->SetSimdLevel(simd_level_);
    p->fvm->SetSimdLevel(simd_level_);
  }
  // The compiled modules (if any) were built from the old bytecode; drop
  // them and let the next kCompiled draw rebuild from the fresh program.
  p->fs_jit.reset();
  p->fs_jit_attempted = false;
  p->vs_jit.reset();
  p->vs_jit_attempted = false;
}

void Context::GetProgramiv(GLuint program, GLenum pname, GLint* params) {
  Sync();
  ProgramObject* p = GetProgram(program);
  if (p == nullptr) {
    SetError(GL_INVALID_VALUE);
    return;
  }
  switch (pname) {
    case GL_LINK_STATUS: *params = p->link_ok ? GL_TRUE : GL_FALSE; break;
    case GL_VALIDATE_STATUS: *params = p->link_ok ? GL_TRUE : GL_FALSE; break;
    case GL_INFO_LOG_LENGTH:
      *params = static_cast<GLint>(p->info_log.size()) + 1;
      break;
    case GL_ACTIVE_UNIFORMS:
      *params = static_cast<GLint>(p->uniforms.size());
      break;
    case GL_ACTIVE_ATTRIBUTES:
      *params = static_cast<GLint>(p->attribs.size());
      break;
    case GL_ATTACHED_SHADERS:
      *params = (p->vertex_shader != 0 ? 1 : 0) +
                (p->fragment_shader != 0 ? 1 : 0);
      break;
    case GL_DELETE_STATUS: *params = GL_FALSE; break;
    default: SetError(GL_INVALID_ENUM);
  }
}

std::string Context::GetProgramInfoLog(GLuint program) {
  Sync();
  ProgramObject* p = GetProgram(program);
  if (p == nullptr) {
    SetError(GL_INVALID_VALUE);
    return {};
  }
  return p->info_log;
}

void Context::UseProgram(GLuint program) {
  if (Recording()) {
    record_->Push([program](Context& c) { c.UseProgram(program); });
    return;
  }
  if (program != 0 && GetProgram(program) == nullptr) {
    SetError(GL_INVALID_VALUE);
    return;
  }
  if (program != 0 && !GetProgram(program)->link_ok) {
    SetError(GL_INVALID_OPERATION);
    return;
  }
  current_program_ = program;
}

void Context::DeleteProgram(GLuint program) {
  if (Recording()) {
    record_->Push([program](Context& c) { c.DeleteProgram(program); });
    return;
  }
  if (current_program_ == program) current_program_ = 0;
  shade_cache_.InvalidateProgram(program);
  programs_.erase(program);
}

GLint Context::GetUniformLocation(GLuint program, const std::string& name) {
  Sync();  // the deferred LinkProgram must have produced the location table
  ProgramObject* p = GetProgram(program);
  if (p == nullptr || !p->link_ok) {
    SetError(GL_INVALID_OPERATION);
    return -1;
  }
  return p->LookupUniform(name);
}

GLint Context::GetAttribLocation(GLuint program, const std::string& name) {
  Sync();
  ProgramObject* p = GetProgram(program);
  if (p == nullptr || !p->link_ok) {
    SetError(GL_INVALID_OPERATION);
    return -1;
  }
  for (const AttribInfo& a : p->attribs) {
    if (a.name == name) return a.location;
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Uniforms
// ---------------------------------------------------------------------------

void Context::SetUniformValue(const UniformInfo& u, int element, int comps,
                              const float* fdata, const GLint* idata,
                              int count, bool is_matrix) {
  ProgramObject* p = GetProgram(current_program_);
  const int type_comps = glsl::ComponentCount(u.type.base);
  const bool type_is_matrix = glsl::IsMatrix(u.type.base);
  const BaseType scalar = glsl::ScalarOf(u.type.base);
  const bool wants_float = scalar == BaseType::kFloat;
  const bool sampler = glsl::IsSampler(u.type.base);

  if (is_matrix != type_is_matrix) {
    SetError(GL_INVALID_OPERATION);
    return;
  }
  if (!is_matrix && comps != type_comps) {
    SetError(GL_INVALID_OPERATION);
    return;
  }
  if (is_matrix && comps != type_comps) {
    SetError(GL_INVALID_OPERATION);
    return;
  }
  if (fdata != nullptr && !wants_float) {
    SetError(GL_INVALID_OPERATION);
    return;
  }
  if (idata != nullptr && wants_float) {
    SetError(GL_INVALID_OPERATION);
    return;
  }
  const int max_elements = u.type.IsArray() ? u.type.array_size : 1;
  if (count > 1 && !u.type.IsArray()) {
    SetError(GL_INVALID_OPERATION);
    return;
  }
  count = std::min(count, max_elements - element);

  // Uniforms are mirrored into both execution engines of each stage so the
  // ExecEngine switch can flip between draws without a re-sync.
  const std::array<std::pair<glsl::ShaderEngine*, int>, 4> engines{{
      {p->vexec.get(), u.vs_slot},
      {p->vvm.get(), u.vs_slot},
      {p->fexec.get(), u.fs_slot},
      {p->fvm.get(), u.fs_slot},
  }};
  for (const auto& [exec, slot] : engines) {
    if (exec == nullptr || slot < 0) continue;
    Value& val = exec->GlobalAt(slot);
    for (int e = 0; e < count; ++e) {
      const int cell_base = (element + e) * type_comps;
      for (int c = 0; c < type_comps; ++c) {
        if (wants_float) {
          val.SetF(cell_base + c, fdata[e * type_comps + c]);
        } else if (sampler || scalar == BaseType::kInt) {
          val.SetI(cell_base + c, idata[e * type_comps + c]);
        } else {  // bool
          val.SetB(cell_base + c, idata[e * type_comps + c] != 0);
        }
      }
    }
  }
}

#define MGPU_RESOLVE_LOC_OR_RETURN()                                       \
  ProgramObject* p = GetProgram(current_program_);                        \
  if (p == nullptr || !p->link_ok) {                                      \
    SetError(GL_INVALID_OPERATION);                                       \
    return;                                                               \
  }                                                                       \
  if (loc < 0) return; /* silently ignored, GL semantics */               \
  if (loc >= static_cast<GLint>(p->locations.size())) {                   \
    SetError(GL_INVALID_OPERATION);                                       \
    return;                                                               \
  }                                                                       \
  const ProgramObject::LocationEntry entry =                              \
      p->locations[static_cast<std::size_t>(loc)];                        \
  const UniformInfo& u = p->uniforms[static_cast<std::size_t>(entry.uniform_index)]

void Context::Uniform1f(GLint loc, GLfloat x) {
  if (Recording()) {
    record_->Push([loc, x](Context& c) { c.Uniform1f(loc, x); });
    return;
  }
  MGPU_RESOLVE_LOC_OR_RETURN();
  SetUniformValue(u, entry.element, 1, &x, nullptr, 1, false);
}

void Context::Uniform2f(GLint loc, GLfloat x, GLfloat y) {
  if (Recording()) {
    record_->Push([loc, x, y](Context& c) { c.Uniform2f(loc, x, y); });
    return;
  }
  MGPU_RESOLVE_LOC_OR_RETURN();
  const float v[2] = {x, y};
  SetUniformValue(u, entry.element, 2, v, nullptr, 1, false);
}

void Context::Uniform3f(GLint loc, GLfloat x, GLfloat y, GLfloat z) {
  if (Recording()) {
    record_->Push([loc, x, y, z](Context& c) { c.Uniform3f(loc, x, y, z); });
    return;
  }
  MGPU_RESOLVE_LOC_OR_RETURN();
  const float v[3] = {x, y, z};
  SetUniformValue(u, entry.element, 3, v, nullptr, 1, false);
}

void Context::Uniform4f(GLint loc, GLfloat x, GLfloat y, GLfloat z,
                        GLfloat w) {
  if (Recording()) {
    record_->Push(
        [loc, x, y, z, w](Context& c) { c.Uniform4f(loc, x, y, z, w); });
    return;
  }
  MGPU_RESOLVE_LOC_OR_RETURN();
  const float v[4] = {x, y, z, w};
  SetUniformValue(u, entry.element, 4, v, nullptr, 1, false);
}

void Context::Uniform1i(GLint loc, GLint x) {
  if (Recording()) {
    record_->Push([loc, x](Context& c) { c.Uniform1i(loc, x); });
    return;
  }
  MGPU_RESOLVE_LOC_OR_RETURN();
  SetUniformValue(u, entry.element, 1, nullptr, &x, 1, false);
}

// The *fv uploads deep-copy count*comps floats at record time — exactly the
// span the GL contract obliges the caller to supply; a null pointer stays
// null so replay errors (or crashes) just as immediate mode would.

void Context::Uniform1fv(GLint loc, GLsizei count, const GLfloat* v) {
  if (Recording()) {
    auto copy = cmd::CopyFloats(v, count, 1);
    record_->Push([loc, count, copy](Context& c) {
      c.Uniform1fv(loc, count, cmd::FloatArg(copy));
    });
    return;
  }
  MGPU_RESOLVE_LOC_OR_RETURN();
  SetUniformValue(u, entry.element, 1, v, nullptr, count, false);
}

void Context::Uniform2fv(GLint loc, GLsizei count, const GLfloat* v) {
  if (Recording()) {
    auto copy = cmd::CopyFloats(v, count, 2);
    record_->Push([loc, count, copy](Context& c) {
      c.Uniform2fv(loc, count, cmd::FloatArg(copy));
    });
    return;
  }
  MGPU_RESOLVE_LOC_OR_RETURN();
  SetUniformValue(u, entry.element, 2, v, nullptr, count, false);
}

void Context::Uniform4fv(GLint loc, GLsizei count, const GLfloat* v) {
  if (Recording()) {
    auto copy = cmd::CopyFloats(v, count, 4);
    record_->Push([loc, count, copy](Context& c) {
      c.Uniform4fv(loc, count, cmd::FloatArg(copy));
    });
    return;
  }
  MGPU_RESOLVE_LOC_OR_RETURN();
  SetUniformValue(u, entry.element, 4, v, nullptr, count, false);
}

void Context::UniformMatrix4fv(GLint loc, GLsizei count, GLboolean transpose,
                               const GLfloat* v) {
  if (Recording()) {
    // A transpose request errors before reading `v`, so only copy when the
    // immediate path would read.
    auto copy =
        transpose == GL_FALSE ? cmd::CopyFloats(v, count, 16) : nullptr;
    record_->Push([loc, count, transpose, copy](Context& c) {
      c.UniformMatrix4fv(loc, count, transpose, cmd::FloatArg(copy));
    });
    return;
  }
  if (transpose != GL_FALSE) {
    SetError(GL_INVALID_VALUE);  // must be FALSE in ES 2.0
    return;
  }
  MGPU_RESOLVE_LOC_OR_RETURN();
  SetUniformValue(u, entry.element, 16, v, nullptr, count, true);
}

#undef MGPU_RESOLVE_LOC_OR_RETURN

// ---------------------------------------------------------------------------
// Vertex attributes & buffers
// ---------------------------------------------------------------------------

void Context::EnableVertexAttribArray(GLuint index) {
  if (Recording()) {
    record_->EnableVertexAttribArray(index);
    return;
  }
  if (index >= attribs_.size()) {
    SetError(GL_INVALID_VALUE);
    return;
  }
  attribs_[index].enabled = true;
}

void Context::DisableVertexAttribArray(GLuint index) {
  if (Recording()) {
    record_->DisableVertexAttribArray(index);
    return;
  }
  if (index >= attribs_.size()) {
    SetError(GL_INVALID_VALUE);
    return;
  }
  attribs_[index].enabled = false;
}

void Context::VertexAttribPointer(GLuint index, GLint size, GLenum type,
                                  GLboolean normalized, GLsizei stride,
                                  const void* pointer) {
  if (Recording()) {
    record_->VertexAttribPointer(index, size, type, normalized, stride,
                                 pointer);
    return;
  }
  if (index >= attribs_.size()) {
    SetError(GL_INVALID_VALUE);
    return;
  }
  if (size < 1 || size > 4 || stride < 0) {
    SetError(GL_INVALID_VALUE);
    return;
  }
  if (type != GL_FLOAT && type != GL_UNSIGNED_BYTE && type != GL_BYTE &&
      type != GL_SHORT && type != GL_UNSIGNED_SHORT) {
    SetError(GL_INVALID_ENUM);
    return;
  }
  AttribState& a = attribs_[index];
  a.size = size;
  a.type = type;
  a.normalized = normalized;
  a.stride = stride;
  a.pointer = pointer;
  a.buffer = array_buffer_;
}

void Context::VertexAttrib4f(GLuint index, GLfloat x, GLfloat y, GLfloat z,
                             GLfloat w) {
  if (Recording()) {
    record_->Push([index, x, y, z, w](Context& c) {
      c.VertexAttrib4f(index, x, y, z, w);
    });
    return;
  }
  if (index >= attribs_.size()) {
    SetError(GL_INVALID_VALUE);
    return;
  }
  attribs_[index].constant = {x, y, z, w};
}

BufferObject* Context::GetBuffer(GLuint id) {
  const auto it = buffers_.find(id);
  return it != buffers_.end() ? it->second.get() : nullptr;
}

void Context::GenBuffers(GLsizei n, GLuint* ids) {
  Sync();  // returns fresh ids: must observe every deferred create/delete
  for (GLsizei i = 0; i < n; ++i) {
    const GLuint id = next_id_++;
    buffers_[id] = std::make_unique<BufferObject>();
    ids[i] = id;
  }
}

void Context::BindBuffer(GLenum target, GLuint id) {
  if (Recording()) {
    record_->BindBuffer(target, id);
    return;
  }
  if (id != 0 && GetBuffer(id) == nullptr) {
    buffers_[id] = std::make_unique<BufferObject>();
  }
  if (target == GL_ARRAY_BUFFER) {
    array_buffer_ = id;
  } else if (target == GL_ELEMENT_ARRAY_BUFFER) {
    element_array_buffer_ = id;
  } else {
    SetError(GL_INVALID_ENUM);
  }
}

void Context::BufferData(GLenum target, GLsizeiptr size, const void* data,
                         GLenum usage) {
  if (Recording()) {
    // Copy the client bytes now (the GL contract consumes them at the
    // call); a null pointer or non-positive size reads nothing, exactly
    // like the immediate path.
    std::shared_ptr<std::vector<std::uint8_t>> copy;
    if (data != nullptr && size > 0) {
      const auto* src = static_cast<const std::uint8_t*>(data);
      copy = std::make_shared<std::vector<std::uint8_t>>(
          src, src + static_cast<std::size_t>(size));
    }
    record_->Push([target, size, copy, usage](Context& c) {
      c.BufferData(target, size, copy ? copy->data() : nullptr, usage);
    });
    return;
  }
  const GLuint id =
      target == GL_ARRAY_BUFFER ? array_buffer_ : element_array_buffer_;
  BufferObject* b = GetBuffer(id);
  if (b == nullptr) {
    SetError(GL_INVALID_OPERATION);
    return;
  }
  if (size < 0) {
    SetError(GL_INVALID_VALUE);
    return;
  }
  b->usage = usage;
  b->data.assign(static_cast<std::size_t>(size), 0);
  if (data != nullptr) {
    std::memcpy(b->data.data(), data, static_cast<std::size_t>(size));
  }
}

void Context::BufferSubData(GLenum target, GLintptr offset, GLsizeiptr size,
                            const void* data) {
  // Sync point, not recorded: whether the source bytes may be read at all
  // depends on the bound buffer's current size, which only the executed
  // stream knows — a record-time copy could read bytes the immediate path
  // would reject with GL_INVALID_VALUE before touching.
  Sync();
  const GLuint id =
      target == GL_ARRAY_BUFFER ? array_buffer_ : element_array_buffer_;
  BufferObject* b = GetBuffer(id);
  if (b == nullptr) {
    SetError(GL_INVALID_OPERATION);
    return;
  }
  if (offset < 0 || size < 0 ||
      static_cast<std::size_t>(offset + size) > b->data.size()) {
    SetError(GL_INVALID_VALUE);
    return;
  }
  std::memcpy(b->data.data() + offset, data, static_cast<std::size_t>(size));
}

void Context::DeleteBuffers(GLsizei n, const GLuint* ids) {
  if (Recording()) {
    record_->DeleteBuffers(n, ids);
    return;
  }
  for (GLsizei i = 0; i < n; ++i) {
    buffers_.erase(ids[i]);
    if (array_buffer_ == ids[i]) array_buffer_ = 0;
    if (element_array_buffer_ == ids[i]) element_array_buffer_ = 0;
    // Delete-detach semantics: attributes sourcing the deleted buffer fall
    // back to a null client pointer, so a later draw fails cleanly with
    // GL_INVALID_OPERATION instead of dereferencing a stale id (and a
    // recorded draw can never resurrect freed storage).
    if (ids[i] != 0) {
      for (AttribState& a : attribs_) {
        if (a.buffer == ids[i]) {
          a.buffer = 0;
          a.pointer = nullptr;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Textures
// ---------------------------------------------------------------------------

Texture* Context::GetTextureObject(GLuint id) {
  Sync();
  return LookupTexture(id);
}

// Non-syncing lookup for internal draw-time use: the texture callbacks run
// on pool workers while the device thread owns the draw, where a sync
// prologue would join against ourselves.
Texture* Context::LookupTexture(GLuint id) {
  const auto it = textures_.find(id);
  return it != textures_.end() ? it->second.get() : nullptr;
}

void Context::GenTextures(GLsizei n, GLuint* ids) {
  Sync();  // returns fresh ids: must observe every deferred create/delete
  for (GLsizei i = 0; i < n; ++i) {
    const GLuint id = next_id_++;
    textures_[id] = std::make_unique<Texture>();
    ids[i] = id;
  }
}

void Context::ActiveTexture(GLenum unit) {
  if (Recording()) {
    record_->Push([unit](Context& c) { c.ActiveTexture(unit); });
    return;
  }
  const int idx = static_cast<int>(unit - GL_TEXTURE0);
  if (idx < 0 || idx >= static_cast<int>(units_.size())) {
    SetError(GL_INVALID_ENUM);
    return;
  }
  active_unit_ = idx;
}

void Context::BindTexture(GLenum target, GLuint id) {
  if (Recording()) {
    record_->Push([target, id](Context& c) { c.BindTexture(target, id); });
    return;
  }
  if (target == GL_TEXTURE_CUBE_MAP) {
    SetError(GL_INVALID_ENUM);  // documented subset: no cube maps
    return;
  }
  if (target != GL_TEXTURE_2D) {
    SetError(GL_INVALID_ENUM);
    return;
  }
  if (id != 0 && LookupTexture(id) == nullptr) {
    textures_[id] = std::make_unique<Texture>();
  }
  units_[static_cast<std::size_t>(active_unit_)].bound_2d = id;
}

void Context::TexImage2D(GLenum target, GLint level, GLint internal_format,
                         GLsizei width, GLsizei height, GLint border,
                         GLenum format, GLenum type, const void* data) {
  // Sync point, not recorded: how many client bytes a legal upload may
  // read depends on texture state only the executed stream knows, so the
  // upload runs inline against drained state instead of deep-copying.
  Sync();
  if (target != GL_TEXTURE_2D) {
    SetError(GL_INVALID_ENUM);
    return;
  }
  if (border != 0) {
    SetError(GL_INVALID_VALUE);
    return;
  }
  if (width > config_.max_texture_size || height > config_.max_texture_size) {
    SetError(GL_INVALID_VALUE);
    return;
  }
  Texture* t = LookupTexture(
      units_[static_cast<std::size_t>(active_unit_)].bound_2d);
  if (t == nullptr) {
    SetError(GL_INVALID_OPERATION);
    return;
  }
  const GLenum err =
      t->TexImage2D(level, static_cast<GLenum>(internal_format), width,
                    height, format, type, data, unpack_alignment_);
  if (err != GL_NO_ERROR) SetError(err);
}

void Context::TexSubImage2D(GLenum target, GLint level, GLint xoffset,
                            GLint yoffset, GLsizei width, GLsizei height,
                            GLenum format, GLenum type, const void* data) {
  Sync();  // same contract as TexImage2D
  if (target != GL_TEXTURE_2D) {
    SetError(GL_INVALID_ENUM);
    return;
  }
  Texture* t = LookupTexture(
      units_[static_cast<std::size_t>(active_unit_)].bound_2d);
  if (t == nullptr) {
    SetError(GL_INVALID_OPERATION);
    return;
  }
  const GLenum err = t->TexSubImage2D(level, xoffset, yoffset, width, height,
                                      format, type, data, unpack_alignment_);
  if (err != GL_NO_ERROR) SetError(err);
}

void Context::TexParameteri(GLenum target, GLenum pname, GLint param) {
  if (Recording()) {
    record_->Push(
        [target, pname, param](Context& c) { c.TexParameteri(target, pname, param); });
    return;
  }
  if (target != GL_TEXTURE_2D) {
    SetError(GL_INVALID_ENUM);
    return;
  }
  Texture* t = LookupTexture(
      units_[static_cast<std::size_t>(active_unit_)].bound_2d);
  if (t == nullptr) {
    SetError(GL_INVALID_OPERATION);
    return;
  }
  const GLenum err = t->SetParameter(pname, param);
  if (err != GL_NO_ERROR) SetError(err);
}

void Context::DeleteTextures(GLsizei n, const GLuint* ids) {
  if (Recording()) {
    std::shared_ptr<std::vector<GLuint>> copy;
    if (ids != nullptr && n > 0) {
      copy = std::make_shared<std::vector<GLuint>>(ids, ids + n);
    }
    record_->Push([n, copy](Context& c) {
      c.DeleteTextures(copy ? static_cast<GLsizei>(copy->size()) : n,
                       copy ? copy->data() : nullptr);
    });
    return;
  }
  for (GLsizei i = 0; i < n; ++i) {
    textures_.erase(ids[i]);
    for (TextureUnit& u : units_) {
      if (u.bound_2d == ids[i]) u.bound_2d = 0;
    }
    // Delete-detach semantics: framebuffers holding the dead texture drop
    // to an unattached state (rendering then fails framebuffer-incomplete
    // instead of chasing a stale id into freed storage).
    if (ids[i] != 0) {
      for (auto& [fb_id, fb] : framebuffers_) {
        if (fb->color.kind == FramebufferAttachment::Kind::kTexture &&
            fb->color.object == ids[i]) {
          fb->color = FramebufferAttachment{};
        }
        if (fb->depth.kind == FramebufferAttachment::Kind::kTexture &&
            fb->depth.object == ids[i]) {
          fb->depth = FramebufferAttachment{};
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Renderbuffers & framebuffers
// ---------------------------------------------------------------------------

RenderbufferObject* Context::GetRenderbuffer(GLuint id) {
  const auto it = renderbuffers_.find(id);
  return it != renderbuffers_.end() ? it->second.get() : nullptr;
}

FramebufferObject* Context::GetFramebuffer(GLuint id) {
  const auto it = framebuffers_.find(id);
  return it != framebuffers_.end() ? it->second.get() : nullptr;
}

void Context::GenRenderbuffers(GLsizei n, GLuint* ids) {
  Sync();  // returns fresh ids: must observe every deferred create/delete
  for (GLsizei i = 0; i < n; ++i) {
    const GLuint id = next_id_++;
    renderbuffers_[id] = std::make_unique<RenderbufferObject>();
    ids[i] = id;
  }
}

void Context::BindRenderbuffer(GLenum target, GLuint id) {
  if (Recording()) {
    record_->Push([target, id](Context& c) { c.BindRenderbuffer(target, id); });
    return;
  }
  if (target != GL_RENDERBUFFER) {
    SetError(GL_INVALID_ENUM);
    return;
  }
  if (id != 0 && GetRenderbuffer(id) == nullptr) {
    renderbuffers_[id] = std::make_unique<RenderbufferObject>();
  }
  bound_renderbuffer_ = id;
}

void Context::RenderbufferStorage(GLenum target, GLenum internal_format,
                                  GLsizei w, GLsizei h) {
  if (Recording()) {
    record_->Push([target, internal_format, w, h](Context& c) {
      c.RenderbufferStorage(target, internal_format, w, h);
    });
    return;
  }
  if (target != GL_RENDERBUFFER) {
    SetError(GL_INVALID_ENUM);
    return;
  }
  RenderbufferObject* rb = GetRenderbuffer(bound_renderbuffer_);
  if (rb == nullptr) {
    SetError(GL_INVALID_OPERATION);
    return;
  }
  switch (internal_format) {
    case GL_RGBA4:
    case GL_RGB5_A1:
    case GL_RGB565:
      rb->internal_format = internal_format;
      rb->width = w;
      rb->height = h;
      rb->color.assign(static_cast<std::size_t>(w) * h * 4, 0);
      rb->depth.clear();
      return;
    case GL_DEPTH_COMPONENT16:
      rb->internal_format = internal_format;
      rb->width = w;
      rb->height = h;
      rb->depth.assign(static_cast<std::size_t>(w) * h, 1.0f);
      rb->color.clear();
      return;
    default:
      SetError(GL_INVALID_ENUM);  // no float renderbuffers in ES 2.0 either
  }
}

void Context::DeleteRenderbuffers(GLsizei n, const GLuint* ids) {
  if (Recording()) {
    std::shared_ptr<std::vector<GLuint>> copy;
    if (ids != nullptr && n > 0) {
      copy = std::make_shared<std::vector<GLuint>>(ids, ids + n);
    }
    record_->Push([n, copy](Context& c) {
      c.DeleteRenderbuffers(copy ? static_cast<GLsizei>(copy->size()) : n,
                            copy ? copy->data() : nullptr);
    });
    return;
  }
  for (GLsizei i = 0; i < n; ++i) {
    renderbuffers_.erase(ids[i]);
    if (bound_renderbuffer_ == ids[i]) bound_renderbuffer_ = 0;
    // Delete-detach, matching DeleteTextures.
    if (ids[i] != 0) {
      for (auto& [fb_id, fb] : framebuffers_) {
        if (fb->color.kind == FramebufferAttachment::Kind::kRenderbuffer &&
            fb->color.object == ids[i]) {
          fb->color = FramebufferAttachment{};
        }
        if (fb->depth.kind == FramebufferAttachment::Kind::kRenderbuffer &&
            fb->depth.object == ids[i]) {
          fb->depth = FramebufferAttachment{};
        }
      }
    }
  }
}

void Context::GenFramebuffers(GLsizei n, GLuint* ids) {
  Sync();  // returns fresh ids: must observe every deferred create/delete
  for (GLsizei i = 0; i < n; ++i) {
    const GLuint id = next_id_++;
    framebuffers_[id] = std::make_unique<FramebufferObject>();
    ids[i] = id;
  }
}

void Context::BindFramebuffer(GLenum target, GLuint id) {
  if (Recording()) {
    record_->Push([target, id](Context& c) { c.BindFramebuffer(target, id); });
    return;
  }
  if (target != GL_FRAMEBUFFER) {
    SetError(GL_INVALID_ENUM);
    return;
  }
  if (id != 0 && GetFramebuffer(id) == nullptr) {
    framebuffers_[id] = std::make_unique<FramebufferObject>();
  }
  bound_framebuffer_ = id;
}

void Context::FramebufferTexture2D(GLenum target, GLenum attachment,
                                   GLenum textarget, GLuint texture,
                                   GLint level) {
  if (Recording()) {
    record_->Push([target, attachment, textarget, texture, level](Context& c) {
      c.FramebufferTexture2D(target, attachment, textarget, texture, level);
    });
    return;
  }
  if (target != GL_FRAMEBUFFER || textarget != GL_TEXTURE_2D) {
    SetError(GL_INVALID_ENUM);
    return;
  }
  if (level != 0) {
    SetError(GL_INVALID_VALUE);
    return;
  }
  FramebufferObject* fb = GetFramebuffer(bound_framebuffer_);
  if (fb == nullptr) {
    SetError(GL_INVALID_OPERATION);
    return;
  }
  FramebufferAttachment att;
  att.kind = texture == 0 ? FramebufferAttachment::Kind::kNone
                          : FramebufferAttachment::Kind::kTexture;
  att.object = texture;
  if (attachment == GL_COLOR_ATTACHMENT0) {
    fb->color = att;
  } else if (attachment == GL_DEPTH_ATTACHMENT) {
    fb->depth = att;
  } else {
    SetError(GL_INVALID_ENUM);
  }
}

void Context::FramebufferRenderbuffer(GLenum target, GLenum attachment,
                                      GLenum rb_target, GLuint rb) {
  if (Recording()) {
    record_->Push([target, attachment, rb_target, rb](Context& c) {
      c.FramebufferRenderbuffer(target, attachment, rb_target, rb);
    });
    return;
  }
  if (target != GL_FRAMEBUFFER || rb_target != GL_RENDERBUFFER) {
    SetError(GL_INVALID_ENUM);
    return;
  }
  FramebufferObject* fb = GetFramebuffer(bound_framebuffer_);
  if (fb == nullptr) {
    SetError(GL_INVALID_OPERATION);
    return;
  }
  FramebufferAttachment att;
  att.kind = rb == 0 ? FramebufferAttachment::Kind::kNone
                     : FramebufferAttachment::Kind::kRenderbuffer;
  att.object = rb;
  if (attachment == GL_COLOR_ATTACHMENT0) {
    fb->color = att;
  } else if (attachment == GL_DEPTH_ATTACHMENT) {
    fb->depth = att;
  } else {
    SetError(GL_INVALID_ENUM);
  }
}

bool Context::ResolveTarget(RenderTarget* out) {
  if (bound_framebuffer_ == 0) {
    out->color = &fb_color_;
    out->depth = config_.has_depth ? &fb_depth_ : nullptr;
    out->width = config_.width;
    out->height = config_.height;
    return true;
  }
  FramebufferObject* fb = GetFramebuffer(bound_framebuffer_);
  if (fb == nullptr) return false;
  out->color = nullptr;
  out->depth = nullptr;
  switch (fb->color.kind) {
    case FramebufferAttachment::Kind::kTexture: {
      Texture* t = LookupTexture(fb->color.object);
      if (t == nullptr || !t->has_storage() || t->format() != GL_RGBA) {
        return false;
      }
      out->color = &t->mutable_storage();
      out->width = t->width();
      out->height = t->height();
      break;
    }
    case FramebufferAttachment::Kind::kRenderbuffer: {
      RenderbufferObject* rb = GetRenderbuffer(fb->color.object);
      if (rb == nullptr || rb->color.empty()) return false;
      out->color = &rb->color;
      out->width = rb->width;
      out->height = rb->height;
      break;
    }
    case FramebufferAttachment::Kind::kNone:
      return false;  // missing color attachment
  }
  if (fb->depth.kind == FramebufferAttachment::Kind::kRenderbuffer) {
    RenderbufferObject* rb = GetRenderbuffer(fb->depth.object);
    if (rb == nullptr || rb->depth.empty() || rb->width != out->width ||
        rb->height != out->height) {
      return false;
    }
    out->depth = &rb->depth;
  }
  return true;
}

GLenum Context::CheckFramebufferStatus(GLenum target) {
  Sync();  // completeness depends on deferred attachment / storage calls
  if (target != GL_FRAMEBUFFER) {
    SetError(GL_INVALID_ENUM);
    return 0;
  }
  if (bound_framebuffer_ == 0) return GL_FRAMEBUFFER_COMPLETE;
  FramebufferObject* fb = GetFramebuffer(bound_framebuffer_);
  if (fb == nullptr) return GL_FRAMEBUFFER_UNSUPPORTED;
  if (fb->color.kind == FramebufferAttachment::Kind::kNone) {
    return GL_FRAMEBUFFER_INCOMPLETE_MISSING_ATTACHMENT;
  }
  RenderTarget rt;
  return ResolveTarget(&rt) ? GL_FRAMEBUFFER_COMPLETE
                            : GL_FRAMEBUFFER_INCOMPLETE_ATTACHMENT;
}

void Context::DeleteFramebuffers(GLsizei n, const GLuint* ids) {
  if (Recording()) {
    std::shared_ptr<std::vector<GLuint>> copy;
    if (ids != nullptr && n > 0) {
      copy = std::make_shared<std::vector<GLuint>>(ids, ids + n);
    }
    record_->Push([n, copy](Context& c) {
      c.DeleteFramebuffers(copy ? static_cast<GLsizei>(copy->size()) : n,
                           copy ? copy->data() : nullptr);
    });
    return;
  }
  for (GLsizei i = 0; i < n; ++i) {
    framebuffers_.erase(ids[i]);
    if (bound_framebuffer_ == ids[i]) bound_framebuffer_ = 0;
  }
}

// ---------------------------------------------------------------------------
// Clear / ReadPixels
// ---------------------------------------------------------------------------

void Context::Clear(GLbitfield mask) {
  if (Recording()) {
    record_->Push([mask](Context& c) { c.Clear(mask); });
    return;
  }
  RenderTarget rt;
  if (!ResolveTarget(&rt)) {
    SetError(GL_INVALID_FRAMEBUFFER_OPERATION);
    return;
  }
  const int x0 = scissor_enabled_ ? std::max(sc_x_, 0) : 0;
  const int y0 = scissor_enabled_ ? std::max(sc_y_, 0) : 0;
  const int x1 = scissor_enabled_ ? std::min(sc_x_ + sc_w_, rt.width)
                                  : rt.width;
  const int y1 = scissor_enabled_ ? std::min(sc_y_ + sc_h_, rt.height)
                                  : rt.height;
  if ((mask & GL_COLOR_BUFFER_BIT) != 0 && rt.color != nullptr) {
    std::array<std::uint8_t, 4> c{};
    for (int i = 0; i < 4; ++i) {
      const float f = clear_color_[static_cast<std::size_t>(i)];
      c[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
          config_.quantization == FbQuantization::kFloorPaper
              ? std::floor(f * 255.0f)
              : std::floor(f * 255.0f + 0.5f));
    }
    for (int y = y0; y < y1; ++y) {
      for (int x = x0; x < x1; ++x) {
        const std::size_t off = (static_cast<std::size_t>(y) * rt.width + x) * 4;
        for (int i = 0; i < 4; ++i) {
          if (color_mask_[static_cast<std::size_t>(i)]) {
            (*rt.color)[off + static_cast<std::size_t>(i)] =
                c[static_cast<std::size_t>(i)];
          }
        }
      }
    }
  }
  if ((mask & GL_DEPTH_BUFFER_BIT) != 0 && rt.depth != nullptr) {
    for (int y = y0; y < y1; ++y) {
      for (int x = x0; x < x1; ++x) {
        (*rt.depth)[static_cast<std::size_t>(y) * rt.width + x] = 1.0f;
      }
    }
  }
}

void Context::ReadPixels(GLint x, GLint y, GLsizei w, GLsizei h,
                         GLenum format, GLenum type, void* pixels) {
  Sync();  // readback must observe every deferred draw
  // The ONLY guaranteed readback path in ES 2.0 (paper limitation #7): the
  // framebuffer, as RGBA8. There is no glGetTexImage.
  if (format != GL_RGBA || type != GL_UNSIGNED_BYTE) {
    SetError(GL_INVALID_ENUM);
    return;
  }
  RenderTarget rt;
  if (!ResolveTarget(&rt) || rt.color == nullptr) {
    SetError(GL_INVALID_FRAMEBUFFER_OPERATION);
    return;
  }
  auto* dst = static_cast<std::uint8_t*>(pixels);
  const int row_bytes = w * 4;
  const int stride = (row_bytes + pack_alignment_ - 1) / pack_alignment_ *
                     pack_alignment_;
  for (GLsizei row = 0; row < h; ++row) {
    const int sy = y + row;
    for (GLsizei col = 0; col < w; ++col) {
      const int sx = x + col;
      std::uint8_t* out = dst + row * stride + col * 4;
      if (sx < 0 || sy < 0 || sx >= rt.width || sy >= rt.height) {
        out[0] = out[1] = out[2] = out[3] = 0;
        continue;
      }
      const std::size_t off = (static_cast<std::size_t>(sy) * rt.width + sx) * 4;
      std::memcpy(out, rt.color->data() + off, 4);
    }
  }
}

// ---------------------------------------------------------------------------
// Drawing
// ---------------------------------------------------------------------------

bool Context::FetchAttribute(const AttribState& a, GLint vertex,
                             std::array<float, 4>* out) const {
  *out = {0.0f, 0.0f, 0.0f, 1.0f};
  if (!a.enabled) {
    *out = a.constant;
    return true;
  }
  int elem_size = 4;
  switch (a.type) {
    case GL_FLOAT: elem_size = 4; break;
    case GL_UNSIGNED_BYTE: case GL_BYTE: elem_size = 1; break;
    case GL_UNSIGNED_SHORT: case GL_SHORT: elem_size = 2; break;
    default: return false;
  }
  const int stride = a.stride != 0 ? a.stride : a.size * elem_size;
  const std::uint8_t* base = nullptr;
  if (a.buffer != 0) {
    const auto it = buffers_.find(a.buffer);
    if (it == buffers_.end()) return false;
    const std::vector<std::uint8_t>& data = it->second->data;
    const std::uintptr_t off = reinterpret_cast<std::uintptr_t>(a.pointer);
    // The highest byte this fetch touches must exist in the store. 64-bit
    // math: stride * vertex can overflow the 32-bit range the individual
    // arguments were validated in.
    if (off > data.size() ||
        static_cast<std::uint64_t>(stride) *
                static_cast<std::uint64_t>(static_cast<GLuint>(vertex)) +
                static_cast<std::uint64_t>(a.size) *
                    static_cast<std::uint64_t>(elem_size) >
            data.size() - off) {
      return false;
    }
    base = data.data() + off;
  } else {
    base = static_cast<const std::uint8_t*>(a.pointer);
  }
  if (base == nullptr) return false;
  const std::uint8_t* src = base + static_cast<std::ptrdiff_t>(stride) * vertex;
  for (int c = 0; c < a.size; ++c) {
    float v = 0.0f;
    switch (a.type) {
      case GL_FLOAT: {
        float f;
        std::memcpy(&f, src + c * 4, 4);
        v = f;
        break;
      }
      case GL_UNSIGNED_BYTE: {
        const std::uint8_t b = src[c];
        v = a.normalized != GL_FALSE ? b / 255.0f : static_cast<float>(b);
        break;
      }
      case GL_BYTE: {
        std::int8_t b;
        std::memcpy(&b, src + c, 1);
        v = a.normalized != GL_FALSE
                ? std::max(b / 127.0f, -1.0f)
                : static_cast<float>(b);
        break;
      }
      case GL_UNSIGNED_SHORT: {
        std::uint16_t s;
        std::memcpy(&s, src + c * 2, 2);
        v = a.normalized != GL_FALSE ? s / 65535.0f : static_cast<float>(s);
        break;
      }
      case GL_SHORT: {
        std::int16_t s;
        std::memcpy(&s, src + c * 2, 2);
        v = a.normalized != GL_FALSE
                ? std::max(s / 32767.0f, -1.0f)
                : static_cast<float>(s);
        break;
      }
      default:
        return false;
    }
    (*out)[static_cast<std::size_t>(c)] = v;
  }
  return true;
}

bool Context::ShadeVerticesScalar(
    ProgramObject* prog, bool use_vm, GLsizei count,
    const std::function<GLuint(GLsizei)>& index_at,
    std::vector<RasterVertex>& verts,
    const glsl::OpCounts& draw_start_counts) {
  glsl::ShaderEngine& vexec =
      use_vm ? static_cast<glsl::ShaderEngine&>(*prog->vvm) : *prog->vexec;
  try {
    for (GLsizei i = 0; i < count; ++i) {
      const GLuint vi = index_at(i);
      for (const AttribInfo& ai : prog->attribs) {
        std::array<float, 4> v{};
        if (!FetchAttribute(attribs_[static_cast<std::size_t>(ai.location)],
                            static_cast<GLint>(vi), &v)) {
          alu_->SetCounts(draw_start_counts);
          SetError(GL_INVALID_OPERATION);
          return false;
        }
        Value& dst = vexec.GlobalAt(ai.vs_slot);
        const int cells = std::min(ai.type.CellCount(), 4);
        for (int c = 0; c < cells; ++c) {
          dst.SetF(c, v[static_cast<std::size_t>(c)]);
        }
      }
      vexec.Run();
      if (draw_budget_ != 0 &&
          alu_->counts().alu - draw_start_counts.alu > draw_budget_) {
        alu_->SetCounts(draw_start_counts);
        last_draw_error_ = kBudgetMsg;
        reset_status_ = GL_GUILTY_CONTEXT_RESET;
        SetError(GL_OUT_OF_MEMORY);
        return false;
      }
      RasterVertex& out = verts[static_cast<std::size_t>(i)];
      out.clip = {0.0f, 0.0f, 0.0f, 1.0f};
      out.point_size = 1.0f;
      if (prog->vs_position_slot >= 0) {
        const Value& pos = vexec.GlobalAt(prog->vs_position_slot);
        out.clip = {pos.F(0), pos.F(1), pos.F(2), pos.F(3)};
      }
      if (prog->vs_point_size_slot >= 0) {
        out.point_size = vexec.GlobalAt(prog->vs_point_size_slot).F(0);
        if (out.point_size <= 0.0f) out.point_size = 1.0f;
      }
      out.varyings.resize(static_cast<std::size_t>(prog->varying_cells));
      for (const VaryingLink& link : prog->varyings) {
        const Value& v = vexec.GlobalAt(link.vs_slot);
        for (int c = 0; c < link.cells; ++c) {
          out.varyings[static_cast<std::size_t>(link.offset + c)] = v.F(c);
        }
      }
    }
  } catch (const glsl::ShaderRuntimeError& e) {
    // Vertex-stage trap: no framebuffer byte was touched yet, so restoring
    // the counter snapshot completes the abort.
    alu_->SetCounts(draw_start_counts);
    last_draw_error_ = e.what();
    reset_status_ = GL_GUILTY_CONTEXT_RESET;
    SetError(GL_INVALID_OPERATION);
    return false;
  }
  return true;
}

bool Context::ShadeVerticesBatched(
    ProgramObject* prog, GLsizei count,
    const std::function<GLuint(GLsizei)>& index_at,
    std::vector<RasterVertex>& verts,
    const glsl::OpCounts& draw_start_counts) {
  glsl::VmExec& vm = *prog->vvm;

  // kCompiled: attach the vertex stage's module (null when compilation
  // declined); the interpreter engines must not keep one left over from an
  // earlier kCompiled draw. SetJit invalidates the VM's cached operand
  // table, so stamp only on change — vs_jit is the only module ever
  // attached to vvm, so has_jit() identifies it.
  const bool want_jit = config_.exec_engine == ExecEngine::kCompiled &&
                        prog->vs_jit != nullptr;
  if (vm.has_jit() != want_jit) {
    vm.SetJit(want_jit ? prog->vs_jit : nullptr);
  }

  // Lane plumbing, resolved once per program and cached: per-lane Value*
  // tables into vvm's planes. Uniform (non-lane) slots resolve to the
  // shared store, so per-draw uniform sync needs nothing extra here.
  ShadeStateCache::VertexState* vstate =
      shade_cache_.FindVertex(current_program_);
  if (vstate == nullptr) {
    vstate = &shade_cache_.InsertVertex(current_program_);
    const auto lane_srcs = [&vm](int slot) {
      std::array<const Value*, kFragBatchWidth> p{};
      if (slot >= 0) {
        for (int l = 0; l < glsl::kVmLanes; ++l) {
          p[static_cast<std::size_t>(l)] = &vm.LaneGlobalAt(slot, l);
        }
      }
      return p;
    };
    vstate->position = lane_srcs(prog->vs_position_slot);
    vstate->point_size = lane_srcs(prog->vs_point_size_slot);
    vstate->attribs.clear();
    vstate->attribs.reserve(prog->attribs.size());
    for (const AttribInfo& ai : prog->attribs) {
      ShadeStateCache::VertexState::AttribLanes al;
      al.location = ai.location;
      al.cells = std::min(ai.type.CellCount(), 4);
      for (int l = 0; l < glsl::kVmLanes; ++l) {
        al.dst[static_cast<std::size_t>(l)] = &vm.LaneGlobalAt(ai.vs_slot, l);
      }
      vstate->attribs.push_back(al);
    }
    vstate->varyings.clear();
    vstate->varyings.reserve(prog->varyings.size());
    for (const VaryingLink& link : prog->varyings) {
      ShadeStateCache::VertexState::VaryingSrc vl;
      vl.cells = link.cells;
      vl.offset = link.offset;
      for (int l = 0; l < glsl::kVmLanes; ++l) {
        vl.src[static_cast<std::size_t>(l)] = &vm.LaneGlobalAt(link.vs_slot, l);
      }
      vstate->varyings.push_back(vl);
    }
  }

  // Per-draw attribute sources, resolved once: the batched FetchAttribute.
  // Every failure FetchAttribute can report (missing buffer, null base,
  // unknown type enum) is independent of the vertex index, so failing here
  // — before any lane ran — reproduces the scalar loop's first-vertex
  // failure exactly.
  vstate->sources.resize(vstate->attribs.size());
  for (std::size_t k = 0; k < vstate->attribs.size(); ++k) {
    const AttribState& a =
        attribs_[static_cast<std::size_t>(vstate->attribs[k].location)];
    ShadeStateCache::VertexState::AttribSource& s = vstate->sources[k];
    s = {};
    if (!a.enabled) {
      s.constant = a.constant.data();
      continue;
    }
    const std::uint8_t* base = nullptr;
    std::size_t bound = SIZE_MAX;
    if (a.buffer != 0) {
      const auto it = buffers_.find(a.buffer);
      if (it == buffers_.end()) {
        alu_->SetCounts(draw_start_counts);
        SetError(GL_INVALID_OPERATION);
        return false;
      }
      const std::vector<std::uint8_t>& data = it->second->data;
      const std::uintptr_t off = reinterpret_cast<std::uintptr_t>(a.pointer);
      if (off > data.size()) {
        // Offset already past the store: every fetch would read out of
        // bounds, same as the scalar path's first-vertex failure.
        alu_->SetCounts(draw_start_counts);
        SetError(GL_INVALID_OPERATION);
        return false;
      }
      base = data.data() + off;
      bound = data.size() - off;
    } else {
      base = static_cast<const std::uint8_t*>(a.pointer);
    }
    int elem_size = 4;
    switch (a.type) {
      case GL_FLOAT: elem_size = 4; break;
      case GL_UNSIGNED_BYTE: case GL_BYTE: elem_size = 1; break;
      case GL_UNSIGNED_SHORT: case GL_SHORT: elem_size = 2; break;
      default: base = nullptr; break;
    }
    if (base == nullptr) {
      alu_->SetCounts(draw_start_counts);
      SetError(GL_INVALID_OPERATION);
      return false;
    }
    s.base = base;
    s.stride = a.stride != 0 ? a.stride : a.size * elem_size;
    s.type = a.type;
    s.normalized = a.normalized != GL_FALSE;
    s.size = a.size;
    s.bound = bound;
    s.tail = a.size * elem_size;
  }

  std::array<GLuint, glsl::kVmLanes> vidx{};
  try {
    for (GLsizei b0 = 0; b0 < count; b0 += glsl::kVmLanes) {
      const int n = static_cast<int>(
          std::min<GLsizei>(glsl::kVmLanes, count - b0));
      for (int l = 0; l < n; ++l) {
        vidx[static_cast<std::size_t>(l)] = index_at(b0 + l);
      }

      // Bounds gate for VBO-backed sources, per chunk: the highest vertex
      // index in the chunk must fetch entirely inside the buffer store.
      // Client arrays (bound == SIZE_MAX) are the caller's contract, as in
      // the scalar path. Same failure surface as ShadeVerticesScalar's
      // FetchAttribute failure: counters restored, GL_INVALID_OPERATION,
      // no framebuffer byte touched.
      GLuint chunk_max = 0;
      for (int l = 0; l < n; ++l) {
        chunk_max = std::max(chunk_max, vidx[static_cast<std::size_t>(l)]);
      }
      for (const ShadeStateCache::VertexState::AttribSource& s :
           vstate->sources) {
        if (s.base == nullptr || s.bound == SIZE_MAX) continue;
        if (static_cast<std::uint64_t>(s.stride) *
                    static_cast<std::uint64_t>(chunk_max) +
                static_cast<std::uint64_t>(s.tail) >
            s.bound) {
          alu_->SetCounts(draw_start_counts);
          SetError(GL_INVALID_OPERATION);
          return false;
        }
      }

      // Gather: decode each enabled attribute's array elements straight
      // into the lane planes — FetchAttribute's per-component conversion
      // with the base/stride/type resolution hoisted out of the loop.
      // Components past the array size keep the (0,0,0,1) defaults the
      // scalar path writes.
      for (std::size_t k = 0; k < vstate->attribs.size(); ++k) {
        const ShadeStateCache::VertexState::AttribLanes& al =
            vstate->attribs[k];
        const ShadeStateCache::VertexState::AttribSource& s =
            vstate->sources[k];
        if (s.base == nullptr) {
          for (int l = 0; l < n; ++l) {
            Value& dst = *al.dst[static_cast<std::size_t>(l)];
            for (int c = 0; c < al.cells; ++c) {
              dst.SetF(c, s.constant[static_cast<std::size_t>(c)]);
            }
          }
          continue;
        }
        if (s.type == GL_FLOAT) {
          // Float arrays need no per-component conversion: blit the element
          // straight into the lane's cell plane (Cell is a 4-byte union
          // whose .f member SetF writes), then default-fill the tail. One
          // memcpy per lane, not per component — the dominant gather shape
          // (tightly packed vec2/vec3/vec4 positions) hits this.
          const int n_copy = std::min(al.cells, s.size);
          for (int l = 0; l < n; ++l) {
            const std::uint8_t* src =
                s.base + static_cast<std::ptrdiff_t>(s.stride) *
                             vidx[static_cast<std::size_t>(l)];
            Value& dst = *al.dst[static_cast<std::size_t>(l)];
            std::memcpy(dst.data(), src,
                        static_cast<std::size_t>(n_copy) * 4);
            for (int c = n_copy; c < al.cells; ++c) {
              dst.SetF(c, c == 3 ? 1.0f : 0.0f);
            }
          }
          continue;
        }
        for (int l = 0; l < n; ++l) {
          const std::uint8_t* src =
              s.base + static_cast<std::ptrdiff_t>(s.stride) *
                           vidx[static_cast<std::size_t>(l)];
          Value& dst = *al.dst[static_cast<std::size_t>(l)];
          for (int c = 0; c < al.cells; ++c) {
            float v = c == 3 ? 1.0f : 0.0f;
            if (c < s.size) {
              switch (s.type) {
                case GL_FLOAT: {
                  float f;
                  std::memcpy(&f, src + c * 4, 4);
                  v = f;
                  break;
                }
                case GL_UNSIGNED_BYTE: {
                  const std::uint8_t b = src[c];
                  v = s.normalized ? b / 255.0f : static_cast<float>(b);
                  break;
                }
                case GL_BYTE: {
                  std::int8_t b;
                  std::memcpy(&b, src + c, 1);
                  v = s.normalized ? std::max(b / 127.0f, -1.0f)
                                   : static_cast<float>(b);
                  break;
                }
                case GL_UNSIGNED_SHORT: {
                  std::uint16_t h;
                  std::memcpy(&h, src + c * 2, 2);
                  v = s.normalized ? h / 65535.0f : static_cast<float>(h);
                  break;
                }
                case GL_SHORT: {
                  std::int16_t h;
                  std::memcpy(&h, src + c * 2, 2);
                  v = s.normalized ? std::max(h / 32767.0f, -1.0f)
                                   : static_cast<float>(h);
                  break;
                }
                default:
                  break;
              }
            }
            dst.SetF(c, v);
          }
        }
      }

      // One instruction-stream pass over the chunk. Lane order == vertex
      // order, so a trapping chunk's minimum trapping lane is the first
      // trapping vertex and the thrown message matches the scalar loop's.
      // (Vertex programs cannot discard; the kept mask is all-ones.)
      (void)vm.RunBatch(n);

      // Watchdog, per chunk instead of per vertex: the totals are monotone
      // toward the same engine-invariant sum, so the trip-vs-not decision
      // is unchanged, and a tripped draw restores the snapshot either way.
      if (draw_budget_ != 0 &&
          alu_->counts().alu - draw_start_counts.alu > draw_budget_) {
        alu_->SetCounts(draw_start_counts);
        last_draw_error_ = kBudgetMsg;
        reset_status_ = GL_GUILTY_CONTEXT_RESET;
        SetError(GL_OUT_OF_MEMORY);
        return false;
      }

      // Scatter, in lane order.
      for (int l = 0; l < n; ++l) {
        const std::size_t li = static_cast<std::size_t>(l);
        RasterVertex& out = verts[static_cast<std::size_t>(b0) + li];
        out.clip = {0.0f, 0.0f, 0.0f, 1.0f};
        out.point_size = 1.0f;
        if (vstate->position[0] != nullptr) {
          const Value& pos = *vstate->position[li];
          out.clip = {pos.F(0), pos.F(1), pos.F(2), pos.F(3)};
        }
        if (vstate->point_size[0] != nullptr) {
          out.point_size = vstate->point_size[li]->F(0);
          if (out.point_size <= 0.0f) out.point_size = 1.0f;
        }
        out.varyings.resize(static_cast<std::size_t>(prog->varying_cells));
        for (const ShadeStateCache::VertexState::VaryingSrc& vl :
             vstate->varyings) {
          const Value& v = *vl.src[li];
          for (int c = 0; c < vl.cells; ++c) {
            out.varyings[static_cast<std::size_t>(vl.offset + c)] = v.F(c);
          }
        }
      }
    }
  } catch (const glsl::ShaderRuntimeError& e) {
    // Vertex-stage trap: no framebuffer byte was touched yet, so restoring
    // the counter snapshot completes the abort.
    alu_->SetCounts(draw_start_counts);
    last_draw_error_ = e.what();
    reset_status_ = GL_GUILTY_CONTEXT_RESET;
    SetError(GL_INVALID_OPERATION);
    return false;
  }
  return true;
}

void Context::WritePixel(RenderTarget& rt, int x, int y, float depth,
                         const std::array<float, 4>& color, bool depth_valid,
                         UndoJournal* journal) {
  if (scissor_enabled_) {
    if (x < sc_x_ || y < sc_y_ || x >= sc_x_ + sc_w_ || y >= sc_y_ + sc_h_) {
      return;
    }
  }
  if (depth_enabled_ && rt.depth != nullptr && depth_valid) {
    const std::size_t di = static_cast<std::size_t>(y) * rt.width + x;
    float& d = (*rt.depth)[di];
    bool pass = false;
    switch (depth_func_) {
      case GL_NEVER: pass = false; break;
      case GL_LESS: pass = depth < d; break;
      case GL_EQUAL: pass = depth == d; break;
      case GL_LEQUAL: pass = depth <= d; break;
      case GL_GREATER: pass = depth > d; break;
      case GL_NOTEQUAL: pass = depth != d; break;
      case GL_GEQUAL: pass = depth >= d; break;
      case GL_ALWAYS: pass = true; break;
      default: pass = true; break;
    }
    if (!pass) return;
    if (depth_write_) {
      if (journal != nullptr) {
        journal->depth.push_back({static_cast<std::uint32_t>(di), d});
      }
      d = depth;
    }
  }
  if (rt.color == nullptr) return;

  // Clamp to [0,1]: the framebuffer conversion of the paper's Eq. (2).
  std::array<float, 4> src{};
  for (int i = 0; i < 4; ++i) {
    src[static_cast<std::size_t>(i)] =
        std::clamp(color[static_cast<std::size_t>(i)], 0.0f, 1.0f);
  }
  const std::size_t off = (static_cast<std::size_t>(y) * rt.width + x) * 4;
  if (blend_enabled_) {
    std::array<float, 4> dst{};
    for (int i = 0; i < 4; ++i) {
      dst[static_cast<std::size_t>(i)] =
          (*rt.color)[off + static_cast<std::size_t>(i)] / 255.0f;
    }
    auto factor = [&](GLenum f, bool /*is_src*/) -> std::array<float, 4> {
      switch (f) {
        case GL_ZERO: return {0, 0, 0, 0};
        case GL_ONE: return {1, 1, 1, 1};
        case GL_SRC_COLOR: return src;
        case GL_ONE_MINUS_SRC_COLOR:
          return {1 - src[0], 1 - src[1], 1 - src[2], 1 - src[3]};
        case GL_SRC_ALPHA: return {src[3], src[3], src[3], src[3]};
        case GL_ONE_MINUS_SRC_ALPHA: {
          const float a = 1 - src[3];
          return {a, a, a, a};
        }
        case GL_DST_ALPHA: return {dst[3], dst[3], dst[3], dst[3]};
        case GL_ONE_MINUS_DST_ALPHA: {
          const float a = 1 - dst[3];
          return {a, a, a, a};
        }
        case GL_DST_COLOR: return dst;
        case GL_ONE_MINUS_DST_COLOR:
          return {1 - dst[0], 1 - dst[1], 1 - dst[2], 1 - dst[3]};
        default: return {1, 1, 1, 1};
      }
    };
    const auto sf = factor(blend_src_, true);
    const auto df = factor(blend_dst_, false);
    for (int i = 0; i < 4; ++i) {
      const std::size_t ii = static_cast<std::size_t>(i);
      src[ii] = std::clamp(src[ii] * sf[ii] + dst[ii] * df[ii], 0.0f, 1.0f);
    }
  }
  if (journal != nullptr) {
    journal->color.push_back({static_cast<std::uint32_t>(off),
                              {(*rt.color)[off], (*rt.color)[off + 1],
                               (*rt.color)[off + 2], (*rt.color)[off + 3]}});
  }
  for (int i = 0; i < 4; ++i) {
    if (!color_mask_[static_cast<std::size_t>(i)]) continue;
    const float f = src[static_cast<std::size_t>(i)];
    float scaled = config_.quantization == FbQuantization::kFloorPaper
                       ? std::floor(f * 255.0f)
                       : std::floor(f * 255.0f + 0.5f);
    // NaN survives both clamps (every comparison is false) and the
    // float->byte cast of a NaN is undefined; GL leaves the converted value
    // undefined too, so pick the stable choice: 0.
    if (!(scaled >= 0.0f)) scaled = 0.0f;
    (*rt.color)[off + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(std::clamp(scaled, 0.0f, 255.0f));
  }
}

void Context::CheckDrawBudget(ShadeStateCache::WorkerState* w) {
  const std::uint64_t now = w->alu->counts().alu;
  const std::uint64_t delta = now - w->budget_reported;
  w->budget_reported = now;
  const std::uint64_t used =
      draw_alu_used_.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (used > draw_budget_) {
    // Classified here (not in the catch) so the generic trap handler does
    // not have to distinguish watchdog throws from shader traps.
    w->error_kind = DrawErrorKind::kBudget;
    throw glsl::ShaderRuntimeError(kBudgetMsg);
  }
}

void Context::DrawArrays(GLenum mode, GLint first, GLsizei count) {
  if (Recording()) {
    if (record_->DrawArrays(mode, first, count)) return;
    // Unrecordable draw (client arrays the snapshot rules exclude, or a
    // submit-failed queue): drain everything queued ahead of it, then run
    // it inline so error order matches immediate mode.
    record_->NoteInlineSync();
    Sync();
  }
  if (first < 0 || count < 0) {
    SetError(GL_INVALID_VALUE);
    return;
  }
  DrawGeneric(mode, count, [first](GLsizei i) {
    return static_cast<GLuint>(first + i);
  });
}

void Context::DrawElements(GLenum mode, GLsizei count, GLenum type,
                           const void* indices) {
  if (Recording()) {
    if (record_->DrawElements(mode, count, type, indices)) return;
    record_->NoteInlineSync();
    Sync();
  }
  if (count < 0) {
    SetError(GL_INVALID_VALUE);
    return;
  }
  if (type != GL_UNSIGNED_BYTE && type != GL_UNSIGNED_SHORT) {
    SetError(GL_INVALID_ENUM);
    return;
  }
  const std::uint8_t* base = nullptr;
  if (element_array_buffer_ != 0) {
    BufferObject* b = GetBuffer(element_array_buffer_);
    if (b == nullptr) {
      SetError(GL_INVALID_OPERATION);
      return;
    }
    const std::uintptr_t off = reinterpret_cast<std::uintptr_t>(indices);
    const std::size_t esz = type == GL_UNSIGNED_SHORT ? 2 : 1;
    // The whole index range must exist in the store before any index is
    // decoded — the index fetch was the other unchecked read here.
    if (off > b->data.size() ||
        static_cast<std::uint64_t>(static_cast<GLuint>(count)) * esz >
            b->data.size() - off) {
      SetError(GL_INVALID_OPERATION);
      return;
    }
    base = b->data.data() + off;
  } else {
    base = static_cast<const std::uint8_t*>(indices);
  }
  if (base == nullptr) {
    SetError(GL_INVALID_VALUE);
    return;
  }
  DrawGeneric(mode, count, [base, type](GLsizei i) -> GLuint {
    if (type == GL_UNSIGNED_BYTE) return base[i];
    std::uint16_t v;
    std::memcpy(&v, base + i * 2, 2);
    return v;
  });
}

void Context::DrawGeneric(GLenum mode, GLsizei count,
                          const std::function<GLuint(GLsizei)>& index_at) {
  last_draw_error_.clear();
  ProgramObject* prog = GetProgram(current_program_);
  if (prog == nullptr || !prog->link_ok) {
    SetError(GL_INVALID_OPERATION);
    return;
  }
  RenderTarget rt;
  if (!ResolveTarget(&rt)) {
    SetError(GL_INVALID_FRAMEBUFFER_OPERATION);
    return;
  }
  switch (mode) {
    case GL_POINTS: case GL_LINES: case GL_LINE_STRIP: case GL_LINE_LOOP:
    case GL_TRIANGLES: case GL_TRIANGLE_STRIP: case GL_TRIANGLE_FAN:
      break;
    default:
      // Desktop GL_QUADS / GL_POLYGON do not exist here: the paper's
      // limitation #2.
      SetError(GL_INVALID_ENUM);
      return;
  }
  if (count == 0) return;

  // Transactional draw: take a counter snapshot now. Together with the
  // per-worker framebuffer undo journals it restores exact "draw never
  // issued" state on any abort (shader trap, watchdog trip, resource
  // failure) — identically for every engine and worker count, because the
  // restored state does not depend on where shading stopped.
  const glsl::OpCounts draw_start_counts = alu_->counts();

  // --- engine selection: the lane-batched VM is the production path; the
  // scalar VM and the tree-walking interpreter are switchable reference
  // oracles. Under the batched engines both stages run lane-batched
  // (vertices through ShadeVerticesBatched unless vertex_batch is off);
  // the oracle engines keep the scalar per-vertex loop. ---
  const bool use_tree = config_.exec_engine == ExecEngine::kTreeWalk;
  const bool use_vm = !use_tree;
  const bool use_batch = config_.exec_engine == ExecEngine::kBatchedVm ||
                         config_.exec_engine == ExecEngine::kCompiled;
  const bool batch_vertex = use_batch && vertex_batch_enabled_;

  // Compiled engine: build each stage's native module lazily at its first
  // kCompiled draw after link, so the interpreter engines never pay the
  // toolchain invocation. A null result (no host compiler, divergent
  // control flow, compile failure) latches and the draw runs as kBatchedVm.
  if (config_.exec_engine == ExecEngine::kCompiled && jit_enabled_ &&
      !prog->fs_jit_attempted) {
    prog->fs_jit = glsl::jit::CompileProgram(*prog->fs_bytecode);
    prog->fs_jit_attempted = true;
  }
  if (config_.exec_engine == ExecEngine::kCompiled && jit_enabled_ &&
      batch_vertex && !prog->vs_jit_attempted) {
    prog->vs_jit = glsl::jit::CompileProgram(*prog->vs_bytecode);
    prog->vs_jit_attempted = true;
  }

  // --- vertex stage ---
  // Post-transform vertices live in context-owned scratch: resize keeps the
  // outer capacity and surviving elements' varying-vector capacity, so a
  // steady-state draw loop allocates nothing here. Fields a program leaves
  // unwritten are reset below to the RasterVertex defaults a fresh vector
  // would have carried.
  std::vector<RasterVertex>& verts = scratch_verts_;
  verts.resize(static_cast<std::size_t>(count));
  if (batch_vertex
          ? !ShadeVerticesBatched(prog, count, index_at, verts,
                                  draw_start_counts)
          : !ShadeVerticesScalar(prog, use_vm, count, index_at, verts,
                                 draw_start_counts)) {
    return;
  }

  // --- fragment stage: two-phase tiled pipeline (VC4-style) ---
  // Phase 1 binning: assemble primitives (strip/fan/loop orderings resolved
  // here) and bin each into the 64x64 tiles its window bounds touch.
  RasterState rs;
  rs.viewport_x = vp_x_;
  rs.viewport_y = vp_y_;
  rs.viewport_w = vp_w_;
  rs.viewport_h = vp_h_;
  rs.target_w = rt.width;
  rs.target_h = rt.height;
  rs.cull_enabled = cull_enabled_;
  rs.cull_face = cull_face_;
  rs.front_face = front_face_;

  std::vector<TilePrim>& prims = scratch_prims_;
  prims.clear();
  auto tri = [&](GLsizei a, GLsizei b, GLsizei c) {
    prims.push_back({TilePrim::Kind::kTriangle, static_cast<std::uint32_t>(a),
                     static_cast<std::uint32_t>(b),
                     static_cast<std::uint32_t>(c)});
  };
  auto line = [&](GLsizei a, GLsizei b) {
    prims.push_back({TilePrim::Kind::kLine, static_cast<std::uint32_t>(a),
                     static_cast<std::uint32_t>(b), 0});
  };
  switch (mode) {
    case GL_TRIANGLES:
      for (GLsizei i = 0; i + 2 < count; i += 3) tri(i, i + 1, i + 2);
      break;
    case GL_TRIANGLE_STRIP:
      for (GLsizei i = 0; i + 2 < count; ++i) {
        // Winding alternates; swap so face orientation stays consistent.
        const bool odd = (i & 1) != 0;
        tri(i, i + (odd ? 2 : 1), i + (odd ? 1 : 2));
      }
      break;
    case GL_TRIANGLE_FAN:
      for (GLsizei i = 1; i + 1 < count; ++i) tri(0, i, i + 1);
      break;
    case GL_POINTS:
      for (GLsizei i = 0; i < count; ++i) {
        prims.push_back(
            {TilePrim::Kind::kPoint, static_cast<std::uint32_t>(i), 0, 0});
      }
      break;
    case GL_LINES:
      for (GLsizei i = 0; i + 1 < count; i += 2) line(i, i + 1);
      break;
    case GL_LINE_STRIP:
      for (GLsizei i = 0; i + 1 < count; ++i) line(i, i + 1);
      break;
    case GL_LINE_LOOP:
      for (GLsizei i = 0; i + 1 < count; ++i) line(i, i + 1);
      if (count > 2) line(count - 1, 0);
      break;
    default:
      break;
  }

  try {
    binner_.BeginDraw(rt.width, rt.height);
    for (std::size_t pi = 0; pi < prims.size(); ++pi) {
      const TilePrim& p = prims[pi];
      PixelRect r;
      bool live = false;
      switch (p.kind) {
        case TilePrim::Kind::kTriangle:
          live = TriangleBounds(verts[p.v0], verts[p.v1], verts[p.v2], rs, &r);
          break;
        case TilePrim::Kind::kPoint:
          live = PointBounds(verts[p.v0], rs, &r);
          break;
        case TilePrim::Kind::kLine:
          // Lines bin tile-exactly by walking once (their bbox would cover
          // quadratically many untouched tiles for diagonals).
          LineTouchedTiles(verts[p.v0], verts[p.v1], rs, kTileSize,
                           [&](int tx, int ty) {
                             binner_.BinTile(static_cast<std::uint32_t>(pi),
                                             tx, ty);
                           });
          break;
      }
      if (live) binner_.Bin(static_cast<std::uint32_t>(pi), r);
    }
    binner_.NonEmptyTiles(&scratch_work_);
  } catch (const std::bad_alloc&) {
    // Allocation failure (injectable: fault::Site::kBinnerGrow) while
    // binning: nothing has touched the framebuffer yet, so restoring the
    // counter snapshot makes the abort a pure no-op draw.
    alu_->SetCounts(draw_start_counts);
    last_draw_error_ = "tile binner allocation failed";
    reset_status_ = GL_INNOCENT_CONTEXT_RESET;
    SetError(GL_OUT_OF_MEMORY);
    return;
  }
  const std::vector<std::uint32_t>& work = scratch_work_;
  if (work.empty()) return;

  // Phase 2 shading: each worker owns a private engine, ALU-counter shard
  // and TMU-cache model; tiles partition the framebuffer, so pixel writes
  // are lock-free and results are byte-identical for any worker count
  // (counter shards merge by summation at join). All per-draw plumbing —
  // sinks/flushes, slot pointers, texture callbacks, batch scratch — is
  // cached in ShadeStateCache worker slots and merely *refreshed* here, so
  // a steady-state draw allocates nothing.

  // <= 0 selects one worker per hardware thread; a hard cap keeps a bogus
  // huge knob value from spawning thousands of OS threads (or throwing
  // out of a GL entry point).
  constexpr int kMaxShaderThreads = 256;
  int threads = config_.shader_threads;
  if (threads <= 0) threads = common::DefaultThreadCount();
  threads = std::min(threads, kMaxShaderThreads);
  const int workers = std::min(threads, static_cast<int>(work.size()));

  ShadeStateCache::Entry* entry = nullptr;
  int slot_count = 1;
  try {
    if (workers > 1 && use_vm) {
      // Parallel shading needs per-worker engine clones (bytecode VM only)
      // and per-worker counter shards (forkable AluModel only). Entries grow
      // lazily to the largest `workers` any draw has needed (never past
      // `threads`), so a 2-tile first draw on a big pool builds 2 slots, not
      // `threads` — and a freshly built slot is already current (the clone
      // copies today's globals), so only pre-existing slots pay the re-sync.
      auto build_worker = [&](std::unique_ptr<glsl::AluModel> shard) {
        // Injectable build failure: slot construction is the allocation-
        // heavy part of a draw (VM clone with a full global-store copy).
        if (fault::ShouldFail(fault::Site::kShadeCacheAlloc)) {
          throw std::bad_alloc();
        }
        auto w = std::make_unique<ShadeStateCache::WorkerState>();
        w->alu_owned = std::move(shard);
        w->engine_owned =
            std::make_unique<glsl::VmExec>(*prog->fvm, *w->alu_owned);
        w->tmu_owned = std::make_unique<TmuCacheModel>();
        w->engine = w->engine_owned.get();
        w->vm = w->engine_owned.get();
        w->alu = w->alu_owned.get();
        w->tmu = w->tmu_owned.get();
        // Clones do not inherit a compiled module; stamp it per slot so the
        // interpreter engines' entries never carry one.
        if (config_.exec_engine == ExecEngine::kCompiled) {
          w->vm->SetJit(prog->fs_jit);
        }
        BuildWorkerPlumbing(*w, prog);
        return w;
      };
      entry = shade_cache_.Find(current_program_, threads);
      if (entry != nullptr) {
        const int have =
            std::min(workers, static_cast<int>(entry->workers.size()));
        for (int i = 0; i < have; ++i) {
          ShadeStateCache::WorkerState& w =
              *entry->workers[static_cast<std::size_t>(i)];
          w.vm->SyncGlobalsFrom(*prog->fvm);
          w.alu->ResetCounts();
        }
      } else {
        // A miss is only usable when the ALU model forks; probe with the
        // first shard so non-forkable models never create an entry.
        std::unique_ptr<glsl::AluModel> first = alu_->Fork();
        if (first != nullptr) {
          entry = &shade_cache_.Insert(current_program_, threads);
          entry->workers.reserve(static_cast<std::size_t>(workers));
          entry->workers.push_back(build_worker(std::move(first)));
        }
      }
      if (entry != nullptr) {
        while (static_cast<int>(entry->workers.size()) < workers) {
          entry->workers.push_back(build_worker(alu_->Fork()));
        }
        slot_count = workers;
      }
    }
    if (entry == nullptr) {
      // Serial path (single tile, threads == 1, the tree oracle, or a
      // non-forkable ALU model): one cached slot that borrows the program's
      // own engine, the context's ALU model (counts land there directly, no
      // merge) and the context-owned serial TMU cache.
      slot_count = 1;
      entry = shade_cache_.Find(current_program_, 1);
      if (entry == nullptr) {
        if (fault::ShouldFail(fault::Site::kShadeCacheAlloc)) {
          throw std::bad_alloc();
        }
        entry = &shade_cache_.Insert(current_program_, 1);
        auto w = std::make_unique<ShadeStateCache::WorkerState>();
        w->engine = use_vm
                        ? static_cast<glsl::ShaderEngine*>(prog->fvm.get())
                        : prog->fexec.get();
        w->vm = use_vm ? prog->fvm.get() : nullptr;
        w->alu = alu_;
        w->tmu = &serial_tmu_cache_;
        // The borrowed fvm serves every engine; attach the compiled module
        // only for kCompiled entries (the slot dtor detaches it again).
        if (w->vm != nullptr) {
          w->vm->SetJit(config_.exec_engine == ExecEngine::kCompiled
                            ? prog->fs_jit
                            : nullptr);
        }
        BuildWorkerPlumbing(*w, prog);
        entry->workers.push_back(std::move(w));
      }
    }
  } catch (const std::bad_alloc&) {
    // Allocation failure (injectable: fault::Site::kShadeCacheAlloc) while
    // building shading state: a partially built cache entry pins
    // inconsistent state, so drop the program's entries — the next draw
    // rebuilds from scratch. No framebuffer byte was touched yet.
    shade_cache_.InvalidateProgram(current_program_);
    alu_->SetCounts(draw_start_counts);
    last_draw_error_ = "shading-state allocation failed";
    reset_status_ = GL_INNOCENT_CONTEXT_RESET;
    SetError(GL_OUT_OF_MEMORY);
    return;
  }

  // Per-draw refresh of the state the cached closures reach through stable
  // addresses: the resolved render target, the failure latch, the watchdog
  // accumulator (seeded with the vertex stage's ops), and each used slot's
  // error/journal/batch scratch (stale only if a previous draw failed).
  draw_rt_ = rt;
  draw_failed_.store(false, std::memory_order_relaxed);
  draw_alu_used_.store(alu_->counts().alu - draw_start_counts.alu,
                       std::memory_order_relaxed);
  // Journal framebuffer writes only when this draw can actually abort
  // after a pixel lands: the fragment stage has trap-capable instructions,
  // the per-draw watchdog is armed, or a fault site is armed. Otherwise
  // the transactional-abort guarantee is vacuous and the hot path skips
  // the per-pixel undo bookkeeping entirely. (A genuine std::bad_alloc
  // mid-shading is the one abort this cannot cover; the injectable
  // resource faults all arm the registry and therefore journal.)
  const bool needs_journal =
      prog->fs_can_trap || draw_budget_ != 0 || fault::AnyArmed();
  for (int i = 0; i < slot_count; ++i) {
    ShadeStateCache::WorkerState& w =
        *entry->workers[static_cast<std::size_t>(i)];
    w.error.clear();
    w.error_kind = DrawErrorKind::kNone;
    w.journal.Clear();
    w.active_journal = needs_journal ? &w.journal : nullptr;
    w.budget_reported = w.alu->counts().alu;
    w.batch.count = 0;
    w.batch.width = config_.fragment_batch_width;
  }

  const int vc = prog->varying_cells;
  auto shade_tile = [&](std::uint32_t tile_index, int slot_index) {
    ShadeStateCache::WorkerState& w =
        *entry->workers[static_cast<std::size_t>(slot_index)];
    const TileBinner::Tile& tile = binner_.tile(tile_index);
    w.tmu->Reset();
    RasterState tile_rs = rs;
    tile_rs.clip_x0 = tile.rect.x0;
    tile_rs.clip_y0 = tile.rect.y0;
    tile_rs.clip_x1 = tile.rect.x1;
    tile_rs.clip_y1 = tile.rect.y1;
    for (const std::uint32_t pi : tile.prims) {
      const TilePrim& p = prims[pi];
      if (use_batch) {
        switch (p.kind) {
          case TilePrim::Kind::kTriangle:
            RasterizeTriangle(verts[p.v0], verts[p.v1], verts[p.v2], vc,
                              tile_rs, w.batch, w.flush);
            break;
          case TilePrim::Kind::kPoint:
            RasterizePoint(verts[p.v0], vc, tile_rs, w.batch, w.flush);
            break;
          case TilePrim::Kind::kLine:
            RasterizeLine(verts[p.v0], verts[p.v1], vc, tile_rs, w.batch,
                          w.flush);
            break;
        }
      } else {
        switch (p.kind) {
          case TilePrim::Kind::kTriangle:
            RasterizeTriangle(verts[p.v0], verts[p.v1], verts[p.v2], vc,
                              tile_rs, w.sink);
            break;
          case TilePrim::Kind::kPoint:
            RasterizePoint(verts[p.v0], vc, tile_rs, w.sink);
            break;
          case TilePrim::Kind::kLine:
            RasterizeLine(verts[p.v0], verts[p.v1], vc, tile_rs, w.sink);
            break;
        }
      }
    }
    // Shade the batch tail before leaving the tile: the next tile resets
    // the TMU-cache model, and deferred TMU replay must land in this
    // tile's cache session.
    if (use_batch) w.flush();
  };

  // A failure outside any worker's shader (allocation mid-shading, a pool
  // task dying before it ran): recorded draw-wide and classified as an
  // implementation fault, not a shader fault.
  std::string infra_error;
  DrawErrorKind infra_error_kind = DrawErrorKind::kNone;
  if (slot_count == 1) {
    try {
      for (const std::uint32_t t : work) shade_tile(t, 0);
    } catch (const std::exception& e) {
      // Shader traps are caught inside the sink/flush closures; anything
      // reaching here is a resource failure of the pipeline itself.
      infra_error = e.what();
      infra_error_kind = DrawErrorKind::kResource;
      draw_failed_.store(true, std::memory_order_relaxed);
    }
  } else {
    // The pool is sized by the configured thread count, not by this draw's
    // slot count, so alternating draws with different tile counts reuse the
    // parked workers instead of respawning threads every draw. Partial
    // dispatch: only one pool task per shading slot is issued, so a draw
    // covering two tiles wakes two workers, not the whole pool.
    if (pool_ == nullptr || pool_->size() != threads) {
      pool_ = std::make_unique<common::ThreadPool>(threads);
    }
    const int tile_count = static_cast<int>(work.size());
    std::atomic<int> next_tile{0};
    try {
      pool_->RunOn(slot_count, [&](int slot_index) {
        // An exception escaping a pool worker's body is captured by the
        // pool and rethrown from RunOn; catch shading failures here so
        // they are attributed to the right worker slot instead.
        ShadeStateCache::WorkerState& w =
            *entry->workers[static_cast<std::size_t>(slot_index)];
        try {
          for (int item = next_tile.fetch_add(1, std::memory_order_relaxed);
               item < tile_count;
               item = next_tile.fetch_add(1, std::memory_order_relaxed)) {
            shade_tile(work[static_cast<std::size_t>(item)], slot_index);
          }
        } catch (const glsl::ShaderRuntimeError& e) {
          w.error = e.what();
          if (w.error_kind == DrawErrorKind::kNone) {
            w.error_kind = DrawErrorKind::kTrap;
          }
          draw_failed_.store(true, std::memory_order_relaxed);
        } catch (const std::exception& e) {
          w.error = e.what();
          if (w.error_kind == DrawErrorKind::kNone) {
            w.error_kind = DrawErrorKind::kResource;
          }
          draw_failed_.store(true, std::memory_order_relaxed);
        }
      });
    } catch (const std::exception& e) {
      // A pool task failed before its body ran (injectable:
      // fault::Site::kPoolTask). The join completed — every other worker
      // finished — so the abort below sees a quiesced, consistent state.
      infra_error = e.what();
      infra_error_kind = DrawErrorKind::kResource;
      draw_failed_.store(true, std::memory_order_relaxed);
    }
    if (!draw_failed_.load(std::memory_order_relaxed)) {
      // Merge the per-worker counter shards only on success: a trapped
      // draw discards them, and the snapshot restore below is what makes
      // the counters read "never issued".
      for (int i = 0; i < slot_count; ++i) {
        alu_->AddCounts(
            entry->workers[static_cast<std::size_t>(i)]->alu->counts());
      }
    }
  }

  if (draw_failed_.load(std::memory_order_relaxed)) {
    // Deterministic draw abort: reverse-replay every worker's undo journal
    // (workers shade disjoint tiles, so cross-worker order is irrelevant;
    // within a worker, reverse order unwinds repeated writes to one pixel
    // correctly) and restore the counter snapshot. The post-abort
    // framebuffer, depth plane and counters equal the pre-draw state byte
    // for byte on every engine, batch width and worker count.
    for (int i = 0; i < slot_count; ++i) {
      ShadeStateCache::WorkerState& w =
          *entry->workers[static_cast<std::size_t>(i)];
      if (rt.color != nullptr) {
        for (auto it = w.journal.color.rbegin(); it != w.journal.color.rend();
             ++it) {
          std::copy(it->old_rgba.begin(), it->old_rgba.end(),
                    rt.color->begin() + it->offset);
        }
      }
      if (rt.depth != nullptr) {
        for (auto it = w.journal.depth.rbegin(); it != w.journal.depth.rend();
             ++it) {
          (*rt.depth)[it->index] = it->old_depth;
        }
      }
      w.journal.Clear();
    }
    alu_->SetCounts(draw_start_counts);
    last_draw_error_ = infra_error;
    DrawErrorKind kind = infra_error_kind;
    for (int i = 0; i < slot_count; ++i) {
      const ShadeStateCache::WorkerState& w =
          *entry->workers[static_cast<std::size_t>(i)];
      if (!w.error.empty()) {
        last_draw_error_ = w.error;
        kind = w.error_kind;
        break;
      }
    }
    if (kind == DrawErrorKind::kNone) kind = DrawErrorKind::kTrap;
    reset_status_ = kind == DrawErrorKind::kResource
                        ? GL_INNOCENT_CONTEXT_RESET
                        : GL_GUILTY_CONTEXT_RESET;
    SetError(kind == DrawErrorKind::kTrap ? GL_INVALID_OPERATION
                                          : GL_OUT_OF_MEMORY);
    return;
  }
  // Committed: the journals exist only to be replayed on abort.
  for (int i = 0; i < slot_count; ++i) {
    entry->workers[static_cast<std::size_t>(i)]->journal.Clear();
  }
}

void Context::BuildWorkerPlumbing(ShadeStateCache::WorkerState& w,
                                  ProgramObject* prog) {
  const bool use_batch = (config_.exec_engine == ExecEngine::kBatchedVm ||
                          config_.exec_engine == ExecEngine::kCompiled) &&
                         w.vm != nullptr;
  ShadeStateCache::WorkerState* const wp = &w;
  const int color_slot = prog->uses_frag_data ? prog->fs_frag_data_slot
                                              : prog->fs_frag_color_slot;

  if (!use_batch) {
    // Scalar engines: one Run() per fragment through a cached sink.
    // Resolving the engine's per-fragment input/output slots through the
    // virtual GlobalAt per fragment is measurable on tiny kernels; global
    // storage is stable for the life of the entry, so resolve them once.
    w.engine->SetTextureFn(MakeTextureFn(w.tmu, w.alu));
    glsl::ShaderEngine& eng = *w.engine;
    Value* const fc_v = prog->fs_frag_coord_slot >= 0
                            ? &eng.GlobalAt(prog->fs_frag_coord_slot)
                            : nullptr;
    Value* const ff_v = prog->fs_front_facing_slot >= 0
                            ? &eng.GlobalAt(prog->fs_front_facing_slot)
                            : nullptr;
    Value* const pc_v = prog->fs_point_coord_slot >= 0
                            ? &eng.GlobalAt(prog->fs_point_coord_slot)
                            : nullptr;
    const Value* const color_v =
        color_slot >= 0 ? &eng.GlobalAt(color_slot) : nullptr;
    struct VaryingDst {
      Value* value;
      int cells;
      int offset;
    };
    std::vector<VaryingDst> varying_dsts;
    varying_dsts.reserve(prog->varyings.size());
    for (const VaryingLink& link : prog->varyings) {
      varying_dsts.push_back(
          {&eng.GlobalAt(link.fs_slot), link.cells, link.offset});
    }
    w.flush = nullptr;
    w.sink = [this, wp, fc_v, ff_v, pc_v, color_v,
              varying_dsts = std::move(varying_dsts)](
                 int x, int y, float depth, const float* vars, bool front,
                 float ps, float pt) {
      if (draw_failed_.load(std::memory_order_relaxed)) return;
      try {
        if (fc_v != nullptr) {
          fc_v->SetF(0, static_cast<float>(x) + 0.5f);
          fc_v->SetF(1, static_cast<float>(y) + 0.5f);
          fc_v->SetF(2, depth);
          fc_v->SetF(3, 1.0f);
        }
        if (ff_v != nullptr) ff_v->SetB(0, front);
        if (pc_v != nullptr) {
          pc_v->SetF(0, ps);
          pc_v->SetF(1, pt);
        }
        for (const VaryingDst& vd : varying_dsts) {
          for (int c = 0; c < vd.cells; ++c) {
            vd.value->SetF(c, vars[vd.offset + c]);
          }
        }
        const bool kept = wp->engine->Run();
        if (draw_budget_ != 0) CheckDrawBudget(wp);
        if (!kept) return;  // discarded
        std::array<float, 4> color{0.0f, 0.0f, 0.0f, 0.0f};
        if (color_v != nullptr) {
          color = {color_v->F(0), color_v->F(1), color_v->F(2),
                   color_v->F(3)};
        }
        WritePixel(draw_rt_, x, y, depth, color, /*depth_valid=*/true,
                   wp->active_journal);
      } catch (const glsl::ShaderRuntimeError& e) {
        wp->error = e.what();
        if (wp->error_kind == DrawErrorKind::kNone) {
          wp->error_kind = DrawErrorKind::kTrap;
        }
        draw_failed_.store(true, std::memory_order_relaxed);
      }
    };
    return;
  }

  // Batched engine: the rasterizer appends covered fragments into the
  // worker's SoA batch; the flush scatters the planes into the VM's
  // per-lane globals, runs the whole batch through one instruction-stream
  // pass, replays the deferred TMU accesses in lane order (reproducing the
  // scalar engine's fragment-sequential texture-cache order), and drains
  // surviving lanes to the framebuffer in emission order.
  w.engine->SetTextureFn(MakeBatchTextureFn(wp));
  glsl::VmExec& vm = *w.vm;
  constexpr int kW = kFragBatchWidth;
  const auto lane_ptrs = [&vm](int slot) {
    std::array<Value*, kW> p{};
    if (slot >= 0) {
      for (int l = 0; l < kW; ++l) p[static_cast<std::size_t>(l)] =
          &vm.LaneGlobalAt(slot, l);
    }
    return p;
  };
  const std::array<Value*, kW> fc = lane_ptrs(prog->fs_frag_coord_slot);
  const std::array<Value*, kW> ff = lane_ptrs(prog->fs_front_facing_slot);
  const std::array<Value*, kW> pc = lane_ptrs(prog->fs_point_coord_slot);
  const std::array<Value*, kW> col = lane_ptrs(color_slot);
  struct LaneVaryingDst {
    std::array<Value*, kW> value;
    int cells;
    int offset;
  };
  std::vector<LaneVaryingDst> varying_dsts;
  varying_dsts.reserve(prog->varyings.size());
  for (const VaryingLink& link : prog->varyings) {
    LaneVaryingDst d;
    d.value = lane_ptrs(link.fs_slot);
    d.cells = link.cells;
    d.offset = link.offset;
    varying_dsts.push_back(d);
  }
  w.sink = nullptr;
  w.flush = [this, wp, fc, ff, pc, col,
             varying_dsts = std::move(varying_dsts)]() {
    FragmentBatch& b = wp->batch;
    const int n = b.count;
    b.count = 0;
    if (n == 0) return;
    const auto drop_tmu_log = [wp, n] {
      for (int l = 0; l < n; ++l) {
        wp->tmu_log[static_cast<std::size_t>(l)].clear();
      }
    };
    if (draw_failed_.load(std::memory_order_relaxed)) {
      drop_tmu_log();
      return;
    }
    try {
      for (int l = 0; l < n; ++l) {
        const std::size_t li = static_cast<std::size_t>(l);
        if (fc[0] != nullptr) {
          Value* const v = fc[li];
          v->SetF(0, static_cast<float>(b.x[li]) + 0.5f);
          v->SetF(1, static_cast<float>(b.y[li]) + 0.5f);
          v->SetF(2, b.depth[li]);
          v->SetF(3, 1.0f);
        }
        if (ff[0] != nullptr) ff[li]->SetB(0, b.front[li] != 0);
        if (pc[0] != nullptr) {
          pc[li]->SetF(0, b.point_s[li]);
          pc[li]->SetF(1, b.point_t[li]);
        }
        for (const LaneVaryingDst& vd : varying_dsts) {
          Value* const v = vd.value[li];
          for (int c = 0; c < vd.cells; ++c) {
            v->SetF(c, b.varyings[static_cast<std::size_t>(vd.offset + c) *
                                      kFragBatchWidth +
                                  li]);
          }
        }
      }
      const std::uint32_t kept = wp->vm->RunBatch(n);
      if (draw_budget_ != 0) CheckDrawBudget(wp);
      // Deferred TMU accounting: lane order == the order the scalar engine
      // would have run these fragments, so modeled miss counts match.
      for (int l = 0; l < n; ++l) {
        std::vector<std::uint64_t>& log =
            wp->tmu_log[static_cast<std::size_t>(l)];
        for (const std::uint64_t line : log) {
          if (wp->tmu->Access(line)) wp->alu->CountTmuMiss(1);
        }
        log.clear();
      }
      for (int l = 0; l < n; ++l) {
        if (((kept >> static_cast<unsigned>(l)) & 1u) == 0) continue;
        const std::size_t li = static_cast<std::size_t>(l);
        std::array<float, 4> color{0.0f, 0.0f, 0.0f, 0.0f};
        if (col[0] != nullptr) {
          const Value& cv = *col[li];
          color = {cv.F(0), cv.F(1), cv.F(2), cv.F(3)};
        }
        WritePixel(draw_rt_, b.x[li], b.y[li], b.depth[li], color,
                   /*depth_valid=*/true, wp->active_journal);
      }
    } catch (const glsl::ShaderRuntimeError& e) {
      wp->error = e.what();
      if (wp->error_kind == DrawErrorKind::kNone) {
        wp->error_kind = DrawErrorKind::kTrap;
      }
      draw_failed_.store(true, std::memory_order_relaxed);
      drop_tmu_log();
    }
  };
}

glsl::TextureFn Context::MakeTextureFn(TmuCacheModel* cache,
                                       glsl::AluModel* alu) {
  return [this, cache, alu](int unit, float s, float t,
                            float lod) -> std::array<float, 4> {
    if (unit < 0 || unit >= static_cast<int>(units_.size())) {
      return {0.0f, 0.0f, 0.0f, 1.0f};
    }
    const GLuint tex_id = units_[static_cast<std::size_t>(unit)].bound_2d;
    Texture* tex = LookupTexture(tex_id);
    if (tex == nullptr) return {0.0f, 0.0f, 0.0f, 1.0f};
    // Texture-cache model: 32-byte lines = 8 RGBA8 texels.
    const long long texel = tex->NearestTexelIndex(s, t);
    if (texel >= 0) {
      const std::uint64_t line = (static_cast<std::uint64_t>(tex_id) << 40) |
                                 static_cast<std::uint64_t>(texel >> 3);
      if (cache->Access(line)) alu->CountTmuMiss(1);
    }
    return tex->Sample(s, t, lod);
  };
}

glsl::TextureFn Context::MakeBatchTextureFn(
    ShadeStateCache::WorkerState* w) {
  // The batched executor interleaves lanes within each instruction, so
  // touching the cache model here would see an instruction-major access
  // order; the scalar engine's order is fragment-major. Sampling is
  // order-independent (contents are immutable during a draw) and happens
  // immediately; the cache-line touch is logged per lane and replayed in
  // lane order by the flush.
  const int* const lane = w->vm->CurrentLanePtr();
  return [this, w, lane](int unit, float s, float t,
                         float lod) -> std::array<float, 4> {
    if (unit < 0 || unit >= static_cast<int>(units_.size())) {
      return {0.0f, 0.0f, 0.0f, 1.0f};
    }
    const GLuint tex_id = units_[static_cast<std::size_t>(unit)].bound_2d;
    Texture* tex = LookupTexture(tex_id);
    if (tex == nullptr) return {0.0f, 0.0f, 0.0f, 1.0f};
    const long long texel = tex->NearestTexelIndex(s, t);
    if (texel >= 0) {
      const std::uint64_t line = (static_cast<std::uint64_t>(tex_id) << 40) |
                                 static_cast<std::uint64_t>(texel >> 3);
      w->tmu_log[static_cast<std::size_t>(*lane)].push_back(line);
    }
    return tex->Sample(s, t, lod);
  };
}

}  // namespace mgpu::gles2
