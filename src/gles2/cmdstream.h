// VC4-style control-list command stream for the GLES2 context. Real
// VideoCore IV is driven by recorded control lists that the binner/renderer
// consume asynchronously, not by immediate-mode calls; this module gives the
// software context the same shape. Client calls are recorded into a
// replayable CommandList (with dirty-state diffing on the fixed-function
// setters and record-time snapshots of client vertex/index arrays), and the
// open list is submitted to a process-wide consumer thread — the "device" —
// that executes lists from every live context in fair FIFO arrival order.
//
// Bit-identity argument: a recorded command is a closure that re-enters the
// very public Context method the client called. On the device thread
// recording is suppressed (CommandQueue::Recording() is false there), so the
// original immediate-mode body runs unchanged, in the original call order,
// against state produced by the same calls — framebuffer bytes, ALU/SFU/TMU
// counts, GL errors and trap/abort semantics are identical to immediate
// mode by construction. The only calls that need more than re-entry are
// draws touching client-owned memory (vertex arrays, client index arrays):
// those are snapshotted at record time, exactly when the GL contract says
// the pointers must be readable, and replayed through
// Context::ReplayRecordedDraw. Dirty-state diffing only ever elides a
// setter that is provably a no-op (valid arguments, identical to the
// shadowed current state), so elision cannot change observable state or
// error order either.
//
// Failure model: a list the device drops (seeded kCmdSubmit fault, or a
// command escaping with an exception) marks the queue submit-failed. While
// the flag is set the shadow state is suspect, so diffing stops eliding and
// draws stop recording; the context's next sync point latches
// GL_OUT_OF_MEMORY + GL_INNOCENT_CONTEXT_RESET (the client did nothing
// wrong) and resynchronizes the shadow from the context's real state.
#ifndef MGPU_GLES2_CMDSTREAM_H_
#define MGPU_GLES2_CMDSTREAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "gles2/enums.h"

namespace mgpu::gles2 {

class Context;

namespace cmd {

// One client vertex array captured at record time: the snapshot bytes are
// swapped into attribute `index` (as a client pointer) around the replayed
// draw on the device thread.
struct AttribCopy {
  GLuint index = 0;
  std::shared_ptr<std::vector<std::uint8_t>> bytes;
};

// Record / elide / submit tallies, exposed through
// Context::command_stream_stats() for the tests and benches. All zero in
// immediate mode.
struct Stats {
  std::uint64_t recorded = 0;         // commands recorded into lists
  std::uint64_t elided = 0;           // setters dropped by dirty diffing
  std::uint64_t draws = 0;            // draws recorded (incl. snapshots)
  std::uint64_t inline_syncs = 0;     // draws that fell back to sync+inline
  std::uint64_t sync_points = 0;      // Context::Sync() flush+joins
  std::uint64_t lists_submitted = 0;  // lists handed to the device
  std::uint64_t lists_executed = 0;   // lists the device completed
  std::uint64_t lists_dropped = 0;    // lists lost (fault / exception)
};

// A replayable sequence of recorded commands. Each command re-enters the
// owning context's public API on the device thread.
class CommandList {
 public:
  using Cmd = std::function<void(Context&)>;

  void Push(Cmd c) { cmds_.push_back(std::move(c)); }
  [[nodiscard]] std::size_t size() const { return cmds_.size(); }
  [[nodiscard]] bool empty() const { return cmds_.empty(); }
  // Runs every command in record order. A command that throws aborts the
  // rest of the list (the device treats that as a dropped list).
  void Execute(Context& ctx);

 private:
  std::vector<Cmd> cmds_;
};

// Deep-copies a client float array for deferred replay (uniform uploads).
// Null input / non-positive count stay null, so replay passes the same
// null pointer the client did.
inline std::shared_ptr<std::vector<GLfloat>> CopyFloats(const GLfloat* v,
                                                        GLsizei count,
                                                        int comps) {
  if (v == nullptr || count <= 0) return nullptr;
  return std::make_shared<std::vector<GLfloat>>(
      v, v + static_cast<std::size_t>(count) * static_cast<std::size_t>(comps));
}
inline const GLfloat* FloatArg(
    const std::shared_ptr<std::vector<GLfloat>>& copy) {
  return copy ? copy->data() : nullptr;
}

// Per-context recording queue. Construction registers with the process-wide
// submit device (spawning its consumer thread on first use); destruction
// flushes, joins and unregisters. All methods except the device-side
// counters are called from the owning context's client thread only, per the
// GL threading model (one context, one thread).
class CommandQueue {
 public:
  CommandQueue(Context* owner, std::size_t attrib_count);
  ~CommandQueue();
  CommandQueue(const CommandQueue&) = delete;
  CommandQueue& operator=(const CommandQueue&) = delete;

  // True when the calling thread should record (any client thread); false
  // on the device thread, where replayed closures must run the original
  // immediate-mode bodies.
  [[nodiscard]] bool Recording() const;

  // Records an opaque command (the generic path for calls that need no
  // shadowing beyond argument deep-copies, which the caller bakes into the
  // closure). Auto-flushes when the open list reaches kAutoFlush commands.
  void Push(std::function<void(Context&)> cmd);

  // Fixed-function setters with dirty-state diffing: a call with valid
  // arguments identical to the shadowed state is elided; anything else —
  // unknown shadow, changed value, or invalid arguments (whose GL error
  // must surface at execution, in order) — is recorded.
  void Enable(GLenum cap);
  void Disable(GLenum cap);
  void Viewport(GLint x, GLint y, GLsizei w, GLsizei h);
  void Scissor(GLint x, GLint y, GLsizei w, GLsizei h);
  void ClearColor(GLfloat r, GLfloat g, GLfloat b, GLfloat a);
  void BlendFunc(GLenum src, GLenum dst);
  void DepthFunc(GLenum func);
  void DepthMask(GLboolean flag);
  void ColorMask(GLboolean r, GLboolean g, GLboolean b, GLboolean a);
  void CullFace(GLenum mode);
  void FrontFace(GLenum dir);
  void PixelStorei(GLenum pname, GLint value);

  // Attribute / buffer-binding mutators: always recorded, and additionally
  // mirrored into the shadow the draw-time snapshot decisions read. The
  // shadow update replicates the context's own validation, so it tracks
  // exactly the state the deferred execution will produce.
  void EnableVertexAttribArray(GLuint index);
  void DisableVertexAttribArray(GLuint index);
  void VertexAttribPointer(GLuint index, GLint size, GLenum type,
                           GLboolean normalized, GLsizei stride,
                           const void* pointer);
  void BindBuffer(GLenum target, GLuint id);
  void DeleteBuffers(GLsizei n, const GLuint* ids);

  // Draw recording. True = recorded (possibly with client-array
  // snapshots); false = this draw cannot be recorded faithfully (or the
  // queue is submit-failed) and the caller must Sync() and run it inline.
  bool DrawArrays(GLenum mode, GLint first, GLsizei count);
  bool DrawElements(GLenum mode, GLsizei count, GLenum type,
                    const void* indices);

  // Submits the open list to the device (no-op when empty) / waits until
  // every submitted list has executed.
  void Flush();
  void Join();

  // Observes-and-clears the submit-failure latch. Must be called with the
  // device idle for this queue (i.e. after Join); a taken failure resyncs
  // the shadow from the owning context's real state.
  bool TakeSubmitFailure();

  // Stat hooks for the owning context.
  void NoteInlineSync() { ++stats_.inline_syncs; }
  void NoteSyncPoint() { ++stats_.sync_points; }
  [[nodiscard]] Stats stats() const;

 private:
  friend class Device;

  // Shadow of the context's fixed-function state, used only to prove
  // setters redundant. Every field starts unknown; invalid setter calls
  // leave it untouched (they do not change context state either).
  struct FfShadow {
    bool scissor_test = false, scissor_test_known = false;
    bool depth_test = false, depth_test_known = false;
    bool blend = false, blend_known = false;
    bool cull = false, cull_known = false;
    GLint vp[4] = {0, 0, 0, 0};
    bool vp_known = false;
    GLint sc[4] = {0, 0, 0, 0};
    bool sc_known = false;
    GLfloat clear[4] = {0, 0, 0, 0};
    bool clear_known = false;
    GLenum blend_src = 0, blend_dst = 0;
    bool blend_func_known = false;
    GLenum depth_func = 0;
    bool depth_func_known = false;
    GLboolean depth_mask = GL_TRUE;
    bool depth_mask_known = false;
    GLboolean color_mask[4] = {GL_TRUE, GL_TRUE, GL_TRUE, GL_TRUE};
    bool color_mask_known = false;
    GLenum cull_face = 0;
    bool cull_face_known = false;
    GLenum front_face = 0;
    bool front_face_known = false;
    GLint unpack = 0;
    bool unpack_known = false;
    GLint pack = 0;
    bool pack_known = false;
  };

  // Shadow of one attribute binding — the fields the draw-time snapshot
  // decision needs, maintained with the same validation the context
  // applies. Defaults match AttribState.
  struct AttribShadow {
    bool enabled = false;
    GLint size = 4;
    GLenum type = GL_FLOAT;
    GLsizei stride = 0;
    const void* pointer = nullptr;
    GLuint buffer = 0;
  };

  // Elision is only sound while the shadow is trusted; a dropped list means
  // recorded state changes never happened, so everything records until the
  // next sync resyncs.
  [[nodiscard]] bool CanElide() const {
    return !submit_failed_.load(std::memory_order_acquire);
  }
  void SetCap(GLenum cap, bool on);
  [[nodiscard]] bool HasClientAttribs() const;
  // Copies every enabled client vertex array covering vertices
  // [0, max_vertex]. False when a snapshot would exceed kMaxSnapshotBytes
  // (caller falls back to sync+inline).
  bool SnapshotClientAttribs(GLuint max_vertex,
                             std::shared_ptr<std::vector<AttribCopy>>* out);
  // Rebuilds the shadow from the owning context's real state (device must
  // be idle). Fixed-function shadow resets to all-unknown.
  void ResyncShadow();

  Context* owner_;
  CommandList open_;
  FfShadow ff_;
  std::vector<AttribShadow> attribs_;
  GLuint array_buffer_ = 0;
  GLuint element_array_buffer_ = 0;
  Stats stats_;

  // Set by the device (drop or mid-list exception), cleared by
  // TakeSubmitFailure on the client thread.
  std::atomic<bool> submit_failed_{false};
  // Device-side completion counters (the rest of Stats is client-side).
  std::atomic<std::uint64_t> lists_executed_{0};
  std::atomic<std::uint64_t> lists_dropped_{0};
  // Lists submitted but not yet retired; guarded by the device mutex (the
  // device's backpressure and Join predicates wait on it).
  int in_flight_ = 0;
};

}  // namespace cmd
}  // namespace mgpu::gles2

#endif  // MGPU_GLES2_CMDSTREAM_H_
