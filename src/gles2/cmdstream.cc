#include "gles2/cmdstream.h"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include "common/fault.h"
#include "gles2/context.h"

namespace mgpu::gles2::cmd {
namespace {

// Commands per list before the open list auto-submits: long enough to
// amortize the submit handshake, short enough that the device pipeline
// stays busy while the client keeps recording.
constexpr std::size_t kAutoFlush = 256;
// Lists one queue may have in flight before Flush blocks (backpressure, so
// a producer that never syncs cannot queue unbounded memory).
constexpr int kMaxInFlight = 64;
// Per-draw cap on snapshotted client-array bytes; a draw that would copy
// more falls back to sync+inline instead of duplicating a huge array.
constexpr std::uint64_t kMaxSnapshotBytes = 1ull << 30;

int ElemSize(GLenum type) {
  switch (type) {
    case GL_FLOAT:
      return 4;
    case GL_SHORT:
    case GL_UNSIGNED_SHORT:
      return 2;
    default:  // GL_BYTE / GL_UNSIGNED_BYTE (the shadow holds valid types)
      return 1;
  }
}

}  // namespace

void CommandList::Execute(Context& ctx) {
  for (const Cmd& c : cmds_) c(ctx);
}

// The process-wide submit device: one consumer thread executing command
// lists from every live context in FIFO arrival order — the fairness model
// real VC4 gives multiple clients of one GPU. A function-local static so
// the thread exists only once some context actually records, and is joined
// at process exit (keeps ASan/TSan happy about lingering threads).
class Device {
 public:
  static Device& Get() {
    static Device device;
    return device;
  }

  void Register(CommandQueue* q) {
    std::lock_guard<std::mutex> lk(mu_);
    queues_.push_back(q);
  }

  void Unregister(CommandQueue* q) {
    std::lock_guard<std::mutex> lk(mu_);
    queues_.erase(std::remove(queues_.begin(), queues_.end(), q),
                  queues_.end());
  }

  // Hands a list to the consumer. Blocks while the queue is at its
  // in-flight cap. The seeded kCmdSubmit fault drops the list wholesale
  // here — the "lost control list" the fault tests sweep.
  void Submit(CommandQueue* q, CommandList list) {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [q] { return q->in_flight_ < kMaxInFlight; });
    if (fault::ShouldFail(fault::Site::kCmdSubmit)) {
      q->submit_failed_.store(true, std::memory_order_release);
      q->lists_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ++q->in_flight_;
    fifo_.push_back(Pending{q, std::move(list)});
    work_cv_.notify_one();
  }

  // Waits until every list submitted by `q` has retired.
  void Join(CommandQueue* q) {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [q] { return q->in_flight_ == 0; });
  }

  // Fault-registry quiesce hook: flush and drain every queue so deferred
  // work executes under the current armed state before it changes. Runs on
  // the arming thread; the fault threading contract guarantees no client
  // thread is recording concurrently.
  void QuiesceAll() {
    std::vector<CommandQueue*> qs;
    {
      std::lock_guard<std::mutex> lk(mu_);
      qs = queues_;
    }
    for (CommandQueue* q : qs) q->Flush();
    for (CommandQueue* q : qs) Join(q);
  }

  [[nodiscard]] bool OnDeviceThread() const {
    return std::this_thread::get_id() == thread_id_;
  }

 private:
  struct Pending {
    CommandQueue* q;
    CommandList list;
  };

  Device() {
    thread_ = std::thread(&Device::Loop, this);
    thread_id_ = thread_.get_id();
    // Hook last: from here on Arm/Disarm/Hits drain this device first.
    fault::SetQuiesceHook([] { Device::Get().QuiesceAll(); });
  }

  ~Device() {
    // Unhook first so a late Arm/Disarm cannot call into a dying device.
    fault::SetQuiesceHook(nullptr);
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    thread_.join();
  }

  void Loop() {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      work_cv_.wait(lk, [this] { return stop_ || !fifo_.empty(); });
      if (fifo_.empty()) {
        if (stop_) return;  // drained — safe to exit
        continue;
      }
      Pending p = std::move(fifo_.front());
      fifo_.pop_front();
      lk.unlock();
      // The queue outlives its in-flight lists: ~CommandQueue joins before
      // unregistering, so `p.q` and its owner context are alive here.
      bool ok = true;
      try {
        p.list.Execute(*p.q->owner_);
      } catch (...) {
        // A command escaping with an exception means the rest of the list
        // is lost — same client-visible contract as a dropped submit.
        ok = false;
      }
      if (ok) {
        p.q->lists_executed_.fetch_add(1, std::memory_order_relaxed);
      } else {
        p.q->submit_failed_.store(true, std::memory_order_release);
        p.q->lists_dropped_.fetch_add(1, std::memory_order_relaxed);
      }
      lk.lock();
      --p.q->in_flight_;
      done_cv_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable work_cv_;   // consumer wakeup
  std::condition_variable done_cv_;   // backpressure / join wakeup
  std::deque<Pending> fifo_;
  std::vector<CommandQueue*> queues_;
  bool stop_ = false;
  std::thread thread_;
  std::thread::id thread_id_;
};

CommandQueue::CommandQueue(Context* owner, std::size_t attrib_count)
    : owner_(owner), attribs_(attrib_count) {
  Device::Get().Register(this);
}

CommandQueue::~CommandQueue() {
  Flush();
  Device::Get().Join(this);
  Device::Get().Unregister(this);
}

bool CommandQueue::Recording() const {
  return !Device::Get().OnDeviceThread();
}

void CommandQueue::Push(std::function<void(Context&)> cmd) {
  ++stats_.recorded;
  open_.Push(std::move(cmd));
  if (open_.size() >= kAutoFlush) Flush();
}

void CommandQueue::Flush() {
  if (open_.empty()) return;
  ++stats_.lists_submitted;
  Device::Get().Submit(this, std::move(open_));
  open_ = CommandList();
}

void CommandQueue::Join() { Device::Get().Join(this); }

bool CommandQueue::TakeSubmitFailure() {
  if (!submit_failed_.exchange(false, std::memory_order_acq_rel)) {
    return false;
  }
  ResyncShadow();
  return true;
}

Stats CommandQueue::stats() const {
  Stats s = stats_;
  s.lists_executed = lists_executed_.load(std::memory_order_relaxed);
  s.lists_dropped = lists_dropped_.load(std::memory_order_relaxed);
  return s;
}

void CommandQueue::ResyncShadow() {
  ff_ = FfShadow{};  // all-unknown: nothing elides until re-proven
  const std::size_t n = std::min(attribs_.size(), owner_->attribs_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& a = owner_->attribs_[i];
    attribs_[i] = AttribShadow{a.enabled, a.size,    a.type,
                               a.stride,  a.pointer, a.buffer};
  }
  array_buffer_ = owner_->array_buffer_;
  element_array_buffer_ = owner_->element_array_buffer_;
}

// --- fixed-function setters (dirty diffing) ------------------------------

void CommandQueue::SetCap(GLenum cap, bool on) {
  bool* state = nullptr;
  bool* known = nullptr;
  switch (cap) {
    case GL_SCISSOR_TEST:
      state = &ff_.scissor_test;
      known = &ff_.scissor_test_known;
      break;
    case GL_DEPTH_TEST:
      state = &ff_.depth_test;
      known = &ff_.depth_test_known;
      break;
    case GL_BLEND:
      state = &ff_.blend;
      known = &ff_.blend_known;
      break;
    case GL_CULL_FACE:
      state = &ff_.cull;
      known = &ff_.cull_known;
      break;
    case GL_DITHER:
      // Accepted but stateless in this implementation: provably a no-op.
      if (CanElide()) {
        ++stats_.elided;
        return;
      }
      break;
    default:
      // Invalid cap: record so GL_INVALID_ENUM surfaces at execution, in
      // order with the surrounding commands.
      break;
  }
  if (state != nullptr) {
    if (CanElide() && *known && *state == on) {
      ++stats_.elided;
      return;
    }
    *state = on;
    *known = true;
  }
  if (on) {
    Push([cap](Context& c) { c.Enable(cap); });
  } else {
    Push([cap](Context& c) { c.Disable(cap); });
  }
}

void CommandQueue::Enable(GLenum cap) { SetCap(cap, true); }
void CommandQueue::Disable(GLenum cap) { SetCap(cap, false); }

void CommandQueue::Viewport(GLint x, GLint y, GLsizei w, GLsizei h) {
  const bool valid = w >= 0 && h >= 0;
  if (valid) {
    if (CanElide() && ff_.vp_known && ff_.vp[0] == x && ff_.vp[1] == y &&
        ff_.vp[2] == w && ff_.vp[3] == h) {
      ++stats_.elided;
      return;
    }
    ff_.vp[0] = x;
    ff_.vp[1] = y;
    ff_.vp[2] = w;
    ff_.vp[3] = h;
    ff_.vp_known = true;
  }
  Push([x, y, w, h](Context& c) { c.Viewport(x, y, w, h); });
}

void CommandQueue::Scissor(GLint x, GLint y, GLsizei w, GLsizei h) {
  const bool valid = w >= 0 && h >= 0;
  if (valid) {
    if (CanElide() && ff_.sc_known && ff_.sc[0] == x && ff_.sc[1] == y &&
        ff_.sc[2] == w && ff_.sc[3] == h) {
      ++stats_.elided;
      return;
    }
    ff_.sc[0] = x;
    ff_.sc[1] = y;
    ff_.sc[2] = w;
    ff_.sc[3] = h;
    ff_.sc_known = true;
  }
  Push([x, y, w, h](Context& c) { c.Scissor(x, y, w, h); });
}

void CommandQueue::ClearColor(GLfloat r, GLfloat g, GLfloat b, GLfloat a) {
  // Raw-argument comparison (identical raw args clamp identically); NaN
  // never compares equal, so NaN args conservatively re-record.
  if (CanElide() && ff_.clear_known && ff_.clear[0] == r &&
      ff_.clear[1] == g && ff_.clear[2] == b && ff_.clear[3] == a) {
    ++stats_.elided;
    return;
  }
  ff_.clear[0] = r;
  ff_.clear[1] = g;
  ff_.clear[2] = b;
  ff_.clear[3] = a;
  ff_.clear_known = true;
  Push([r, g, b, a](Context& c) { c.ClearColor(r, g, b, a); });
}

void CommandQueue::BlendFunc(GLenum src, GLenum dst) {
  // The context accepts any factor pair (unknown factors behave like the
  // defaults at blend time), so every call is a valid state change.
  if (CanElide() && ff_.blend_func_known && ff_.blend_src == src &&
      ff_.blend_dst == dst) {
    ++stats_.elided;
    return;
  }
  ff_.blend_src = src;
  ff_.blend_dst = dst;
  ff_.blend_func_known = true;
  Push([src, dst](Context& c) { c.BlendFunc(src, dst); });
}

void CommandQueue::DepthFunc(GLenum func) {
  const bool valid = func >= GL_NEVER && func <= GL_ALWAYS;
  if (valid) {
    if (CanElide() && ff_.depth_func_known && ff_.depth_func == func) {
      ++stats_.elided;
      return;
    }
    ff_.depth_func = func;
    ff_.depth_func_known = true;
  }
  Push([func](Context& c) { c.DepthFunc(func); });
}

void CommandQueue::DepthMask(GLboolean flag) {
  if (CanElide() && ff_.depth_mask_known && ff_.depth_mask == flag) {
    ++stats_.elided;
    return;
  }
  ff_.depth_mask = flag;
  ff_.depth_mask_known = true;
  Push([flag](Context& c) { c.DepthMask(flag); });
}

void CommandQueue::ColorMask(GLboolean r, GLboolean g, GLboolean b,
                             GLboolean a) {
  if (CanElide() && ff_.color_mask_known && ff_.color_mask[0] == r &&
      ff_.color_mask[1] == g && ff_.color_mask[2] == b &&
      ff_.color_mask[3] == a) {
    ++stats_.elided;
    return;
  }
  ff_.color_mask[0] = r;
  ff_.color_mask[1] = g;
  ff_.color_mask[2] = b;
  ff_.color_mask[3] = a;
  ff_.color_mask_known = true;
  Push([r, g, b, a](Context& c) { c.ColorMask(r, g, b, a); });
}

void CommandQueue::CullFace(GLenum mode) {
  const bool valid =
      mode == GL_FRONT || mode == GL_BACK || mode == GL_FRONT_AND_BACK;
  if (valid) {
    if (CanElide() && ff_.cull_face_known && ff_.cull_face == mode) {
      ++stats_.elided;
      return;
    }
    ff_.cull_face = mode;
    ff_.cull_face_known = true;
  }
  Push([mode](Context& c) { c.CullFace(mode); });
}

void CommandQueue::FrontFace(GLenum dir) {
  const bool valid = dir == GL_CW || dir == GL_CCW;
  if (valid) {
    if (CanElide() && ff_.front_face_known && ff_.front_face == dir) {
      ++stats_.elided;
      return;
    }
    ff_.front_face = dir;
    ff_.front_face_known = true;
  }
  Push([dir](Context& c) { c.FrontFace(dir); });
}

void CommandQueue::PixelStorei(GLenum pname, GLint value) {
  const bool value_ok =
      value == 1 || value == 2 || value == 4 || value == 8;
  GLint* slot = nullptr;
  bool* known = nullptr;
  if (pname == GL_UNPACK_ALIGNMENT) {
    slot = &ff_.unpack;
    known = &ff_.unpack_known;
  } else if (pname == GL_PACK_ALIGNMENT) {
    slot = &ff_.pack;
    known = &ff_.pack_known;
  }
  if (value_ok && slot != nullptr) {
    if (CanElide() && *known && *slot == value) {
      ++stats_.elided;
      return;
    }
    *slot = value;
    *known = true;
  }
  Push([pname, value](Context& c) { c.PixelStorei(pname, value); });
}

// --- attribute / buffer shadow mirrors -----------------------------------

void CommandQueue::EnableVertexAttribArray(GLuint index) {
  if (index < attribs_.size()) attribs_[index].enabled = true;
  Push([index](Context& c) { c.EnableVertexAttribArray(index); });
}

void CommandQueue::DisableVertexAttribArray(GLuint index) {
  if (index < attribs_.size()) attribs_[index].enabled = false;
  Push([index](Context& c) { c.DisableVertexAttribArray(index); });
}

void CommandQueue::VertexAttribPointer(GLuint index, GLint size, GLenum type,
                                       GLboolean normalized, GLsizei stride,
                                       const void* pointer) {
  const bool type_ok = type == GL_FLOAT || type == GL_UNSIGNED_BYTE ||
                       type == GL_BYTE || type == GL_SHORT ||
                       type == GL_UNSIGNED_SHORT;
  if (index < attribs_.size() && size >= 1 && size <= 4 && stride >= 0 &&
      type_ok) {
    AttribShadow& a = attribs_[index];
    a.size = size;
    a.type = type;
    a.stride = stride;
    a.pointer = pointer;
    a.buffer = array_buffer_;
  }
  Push([index, size, type, normalized, stride, pointer](Context& c) {
    c.VertexAttribPointer(index, size, type, normalized, stride, pointer);
  });
}

void CommandQueue::BindBuffer(GLenum target, GLuint id) {
  if (target == GL_ARRAY_BUFFER) {
    array_buffer_ = id;
  } else if (target == GL_ELEMENT_ARRAY_BUFFER) {
    element_array_buffer_ = id;
  }
  Push([target, id](Context& c) { c.BindBuffer(target, id); });
}

void CommandQueue::DeleteBuffers(GLsizei n, const GLuint* ids) {
  std::shared_ptr<std::vector<GLuint>> copy;
  if (ids != nullptr && n > 0) {
    copy = std::make_shared<std::vector<GLuint>>(ids, ids + n);
    for (const GLuint id : *copy) {
      if (id == 0) continue;
      if (array_buffer_ == id) array_buffer_ = 0;
      if (element_array_buffer_ == id) element_array_buffer_ = 0;
      // Mirrors the context's delete-detach semantics: attributes sourcing
      // a deleted buffer fall back to a null client pointer.
      for (AttribShadow& a : attribs_) {
        if (a.buffer == id) {
          a.buffer = 0;
          a.pointer = nullptr;
        }
      }
    }
  }
  Push([n, copy](Context& c) {
    c.DeleteBuffers(copy ? static_cast<GLsizei>(copy->size()) : n,
                    copy ? copy->data() : nullptr);
  });
}

// --- draw recording ------------------------------------------------------

bool CommandQueue::HasClientAttribs() const {
  for (const AttribShadow& a : attribs_) {
    if (a.enabled && a.buffer == 0 && a.pointer != nullptr) return true;
  }
  return false;
}

bool CommandQueue::SnapshotClientAttribs(
    GLuint max_vertex, std::shared_ptr<std::vector<AttribCopy>>* out) {
  auto copies = std::make_shared<std::vector<AttribCopy>>();
  for (std::size_t i = 0; i < attribs_.size(); ++i) {
    const AttribShadow& a = attribs_[i];
    if (!a.enabled || a.buffer != 0 || a.pointer == nullptr) continue;
    const std::uint64_t esz =
        static_cast<std::uint64_t>(ElemSize(a.type));
    const std::uint64_t stride =
        a.stride != 0 ? static_cast<std::uint64_t>(a.stride)
                      : static_cast<std::uint64_t>(a.size) * esz;
    // Exactly the bytes the immediate-mode gather may touch for vertices
    // [0, max_vertex]: client arrays carry no size, so this span is what
    // the GL contract obliges the caller to keep readable.
    const std::uint64_t bytes =
        stride * max_vertex + static_cast<std::uint64_t>(a.size) * esz;
    if (bytes > kMaxSnapshotBytes) return false;
    const auto* src = static_cast<const std::uint8_t*>(a.pointer);
    AttribCopy copy;
    copy.index = static_cast<GLuint>(i);
    copy.bytes = std::make_shared<std::vector<std::uint8_t>>(
        src, src + static_cast<std::size_t>(bytes));
    copies->push_back(std::move(copy));
  }
  *out = std::move(copies);
  return true;
}

bool CommandQueue::DrawArrays(GLenum mode, GLint first, GLsizei count) {
  if (!CanElide()) return false;  // stale shadow: sync, repair, run inline
  // Argument errors (first<0, count<0) and empty draws never read vertex
  // memory, and neither does a draw with no enabled client arrays (VBO
  // contents travel inside the recorded stream) — record those plain.
  if (first < 0 || count <= 0 || !HasClientAttribs()) {
    ++stats_.draws;
    Push([mode, first, count](Context& c) { c.DrawArrays(mode, first, count); });
    return true;
  }
  // Client arrays with a nonzero base vertex would snapshot [0, first)
  // bytes immediate mode never reads; rare enough to just run inline.
  if (first > 0) return false;
  std::shared_ptr<std::vector<AttribCopy>> copies;
  if (!SnapshotClientAttribs(static_cast<GLuint>(count - 1), &copies)) {
    return false;
  }
  ++stats_.draws;
  Push([mode, first, count, copies](Context& c) {
    c.ReplayRecordedDraw(mode, first, count, /*elements=*/false, 0, nullptr,
                         copies);
  });
  return true;
}

bool CommandQueue::DrawElements(GLenum mode, GLsizei count, GLenum type,
                                const void* indices) {
  if (!CanElide()) return false;
  // Argument errors surface at execution without touching index memory.
  if (count <= 0 ||
      (type != GL_UNSIGNED_BYTE && type != GL_UNSIGNED_SHORT)) {
    ++stats_.draws;
    Push([mode, count, type, indices](Context& c) {
      c.DrawElements(mode, count, type, indices);
    });
    return true;
  }
  const bool client_attribs = HasClientAttribs();
  if (element_array_buffer_ != 0) {
    // Indices live in a VBO whose contents the record stream owns; but
    // with client vertex arrays the snapshot span needs the index range,
    // which is unknowable here — run those inline.
    if (client_attribs) return false;
    ++stats_.draws;
    Push([mode, count, type, indices](Context& c) {
      c.DrawElements(mode, count, type, indices);
    });
    return true;
  }
  if (indices == nullptr) {
    // Null client index pointer: errors at execution, reads nothing.
    ++stats_.draws;
    Push([mode, count, type, indices](Context& c) {
      c.DrawElements(mode, count, type, indices);
    });
    return true;
  }
  // Client index array: copy it now (the GL contract consumes it at the
  // call), and scan the range for the attribute snapshot span.
  const std::size_t esz = type == GL_UNSIGNED_BYTE ? 1 : 2;
  const auto* src = static_cast<const std::uint8_t*>(indices);
  auto idx = std::make_shared<std::vector<std::uint8_t>>(
      src, src + static_cast<std::size_t>(count) * esz);
  std::shared_ptr<std::vector<AttribCopy>> copies;
  if (client_attribs) {
    GLuint minv = ~0u, maxv = 0;
    for (GLsizei i = 0; i < count; ++i) {
      GLuint v;
      if (type == GL_UNSIGNED_BYTE) {
        v = (*idx)[static_cast<std::size_t>(i)];
      } else {
        std::uint16_t raw;
        std::memcpy(&raw, idx->data() + static_cast<std::size_t>(i) * 2, 2);
        v = raw;
      }
      minv = std::min(minv, v);
      maxv = std::max(maxv, v);
    }
    // A min index above 0 would make the snapshot read [0, min) bytes the
    // immediate gather never touches — run inline instead.
    if (minv > 0) return false;
    if (!SnapshotClientAttribs(maxv, &copies)) return false;
  }
  ++stats_.draws;
  Push([mode, count, type, idx, copies](Context& c) {
    c.ReplayRecordedDraw(mode, /*first=*/0, count, /*elements=*/true, type,
                         idx, copies);
  });
  return true;
}

}  // namespace mgpu::gles2::cmd
