#include <algorithm>
#include <set>

#include "common/strings.h"
#include "gles2/objects.h"

namespace mgpu::gles2 {
namespace {

using glsl::BaseType;
using glsl::CompiledShader;
using glsl::Qualifier;
using glsl::Type;
using glsl::VarDecl;

// Walks every expression of a compiled shader, calling fn(const Expr&).
template <typename F>
void ForEachExpr(const glsl::Expr* e, F& fn) {
  if (e == nullptr) return;
  fn(*e);
  using glsl::ExprKind;
  switch (e->kind) {
    case ExprKind::kCall: {
      const auto& c = static_cast<const glsl::CallExpr&>(*e);
      for (const auto& a : c.args) ForEachExpr(a.get(), fn);
      break;
    }
    case ExprKind::kCtor: {
      const auto& c = static_cast<const glsl::CtorExpr&>(*e);
      for (const auto& a : c.args) ForEachExpr(a.get(), fn);
      break;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const glsl::BinaryExpr&>(*e);
      ForEachExpr(b.lhs.get(), fn);
      ForEachExpr(b.rhs.get(), fn);
      break;
    }
    case ExprKind::kUnary:
      ForEachExpr(static_cast<const glsl::UnaryExpr&>(*e).operand.get(), fn);
      break;
    case ExprKind::kAssign: {
      const auto& a = static_cast<const glsl::AssignExpr&>(*e);
      ForEachExpr(a.lhs.get(), fn);
      ForEachExpr(a.rhs.get(), fn);
      break;
    }
    case ExprKind::kTernary: {
      const auto& t = static_cast<const glsl::TernaryExpr&>(*e);
      ForEachExpr(t.cond.get(), fn);
      ForEachExpr(t.then_expr.get(), fn);
      ForEachExpr(t.else_expr.get(), fn);
      break;
    }
    case ExprKind::kIndex: {
      const auto& ix = static_cast<const glsl::IndexExpr&>(*e);
      ForEachExpr(ix.base.get(), fn);
      ForEachExpr(ix.index.get(), fn);
      break;
    }
    case ExprKind::kSwizzle:
      ForEachExpr(static_cast<const glsl::SwizzleExpr&>(*e).base.get(), fn);
      break;
    case ExprKind::kComma: {
      const auto& c = static_cast<const glsl::CommaExpr&>(*e);
      ForEachExpr(c.lhs.get(), fn);
      ForEachExpr(c.rhs.get(), fn);
      break;
    }
    default:
      break;
  }
}

template <typename F>
void ForEachStmtExpr(const glsl::Stmt* s, F& fn) {
  if (s == nullptr) return;
  using glsl::StmtKind;
  switch (s->kind) {
    case StmtKind::kExpr:
      ForEachExpr(static_cast<const glsl::ExprStmt&>(*s).expr.get(), fn);
      break;
    case StmtKind::kDecl:
      for (const auto& d : static_cast<const glsl::DeclStmt&>(*s).decls) {
        ForEachExpr(d->init.get(), fn);
      }
      break;
    case StmtKind::kIf: {
      const auto& is = static_cast<const glsl::IfStmt&>(*s);
      ForEachExpr(is.cond.get(), fn);
      ForEachStmtExpr(is.then_stmt.get(), fn);
      ForEachStmtExpr(is.else_stmt.get(), fn);
      break;
    }
    case StmtKind::kFor: {
      const auto& fs = static_cast<const glsl::ForStmt&>(*s);
      ForEachStmtExpr(fs.init.get(), fn);
      ForEachExpr(fs.cond.get(), fn);
      ForEachExpr(fs.step.get(), fn);
      ForEachStmtExpr(fs.body.get(), fn);
      break;
    }
    case StmtKind::kWhile: {
      const auto& ws = static_cast<const glsl::WhileStmt&>(*s);
      ForEachExpr(ws.cond.get(), fn);
      ForEachStmtExpr(ws.body.get(), fn);
      break;
    }
    case StmtKind::kDoWhile: {
      const auto& ds = static_cast<const glsl::DoWhileStmt&>(*s);
      ForEachStmtExpr(ds.body.get(), fn);
      ForEachExpr(ds.cond.get(), fn);
      break;
    }
    case StmtKind::kReturn:
      ForEachExpr(static_cast<const glsl::ReturnStmt&>(*s).value.get(), fn);
      break;
    case StmtKind::kBlock:
      for (const auto& st : static_cast<const glsl::BlockStmt&>(*s).stmts) {
        ForEachStmtExpr(st.get(), fn);
      }
      break;
    default:
      break;
  }
}

// True if the shader statically references the variable `name`.
bool ReferencesVariable(const CompiledShader& cs, const std::string& name) {
  bool found = false;
  auto fn = [&](const glsl::Expr& e) {
    if (e.kind == glsl::ExprKind::kVarRef &&
        static_cast<const glsl::VarRefExpr&>(e).name == name) {
      found = true;
    }
  };
  for (const auto& f : cs.tu->functions) {
    ForEachStmtExpr(f->body.get(), fn);
  }
  for (const auto& g : cs.tu->globals) {
    ForEachExpr(g->init.get(), fn);
  }
  return found;
}

void Fail(ProgramObject& prog, std::string msg) {
  prog.info_log += "ERROR: link: " + msg + "\n";
  prog.link_ok = false;
}

}  // namespace

void LinkProgram(ProgramObject& prog,
                 const std::map<GLuint, std::unique_ptr<ShaderObject>>& shaders,
                 glsl::AluModel& alu, const glsl::Limits& limits) {
  prog.linked = true;
  prog.link_ok = true;
  prog.info_log.clear();
  prog.varyings.clear();
  prog.attribs.clear();
  prog.uniforms.clear();
  prog.locations.clear();
  prog.uniform_locations.clear();
  prog.varying_cells = 0;

  const auto vs_it = shaders.find(prog.vertex_shader);
  const auto fs_it = shaders.find(prog.fragment_shader);
  if (prog.vertex_shader == 0 || prog.fragment_shader == 0 ||
      vs_it == shaders.end() || fs_it == shaders.end()) {
    // ES 2.0 requires BOTH stages to be attached (paper challenge 1: unlike
    // desktop GL there is no fixed-function fallback).
    Fail(prog, "a program requires both a vertex and a fragment shader "
               "(OpenGL ES 2.0 has no fixed-function stages)");
    return;
  }
  const ShaderObject& vso = *vs_it->second;
  const ShaderObject& fso = *fs_it->second;
  if (!vso.compile_ok || !fso.compile_ok || vso.compiled == nullptr ||
      fso.compiled == nullptr) {
    Fail(prog, "attached shaders are not successfully compiled");
    return;
  }
  prog.vs = vso.compiled;
  prog.fs = fso.compiled;

  // --- varyings: every varying consumed by the fragment stage must be
  // declared with an identical type by the vertex stage.
  int offset = 0;
  for (const VarDecl* fg : prog.fs->globals) {
    if (fg->qual != Qualifier::kVarying) continue;
    const VarDecl* vg = prog.vs->FindGlobal(fg->name);
    if (vg == nullptr || vg->qual != Qualifier::kVarying) {
      Fail(prog, StrFormat("varying '%s' is not declared by the vertex "
                           "shader",
                           fg->name.c_str()));
      continue;
    }
    if (!(vg->type == fg->type)) {
      Fail(prog, StrFormat("varying '%s' has mismatched types (%s vs %s)",
                           fg->name.c_str(), vg->type.ToString().c_str(),
                           fg->type.ToString().c_str()));
      continue;
    }
    VaryingLink link;
    link.vs_slot = vg->slot;
    link.fs_slot = fg->slot;
    link.cells = fg->type.CellCount();
    link.offset = offset;
    offset += link.cells;
    prog.varyings.push_back(link);
  }
  prog.varying_cells = offset;

  // --- attributes: honor BindAttribLocation, then assign the rest.
  std::set<int> used_locations;
  for (const VarDecl* vg : prog.vs->globals) {
    if (vg->qual != Qualifier::kAttribute) continue;
    AttribInfo info;
    info.name = vg->name;
    info.type = vg->type;
    info.vs_slot = vg->slot;
    const auto bound = prog.bound_attribs.find(vg->name);
    if (bound != prog.bound_attribs.end()) {
      info.location = bound->second;
      if (info.location < 0 || info.location >= limits.max_vertex_attribs) {
        Fail(prog, StrFormat("attribute '%s' bound to invalid location %d",
                             vg->name.c_str(), info.location));
        continue;
      }
      used_locations.insert(info.location);
    }
    prog.attribs.push_back(info);
  }
  for (AttribInfo& info : prog.attribs) {
    if (info.location >= 0) continue;
    for (int loc = 0; loc < limits.max_vertex_attribs; ++loc) {
      if (used_locations.count(loc) == 0) {
        info.location = loc;
        used_locations.insert(loc);
        break;
      }
    }
    if (info.location < 0) {
      Fail(prog, StrFormat("no free location for attribute '%s'",
                           info.name.c_str()));
    }
  }

  // --- uniforms: merge the two stages; types must agree.
  auto add_uniforms = [&](const CompiledShader& cs, bool is_vertex) {
    for (const VarDecl* g : cs.globals) {
      if (g->qual != Qualifier::kUniform) continue;
      UniformInfo* existing = nullptr;
      for (UniformInfo& u : prog.uniforms) {
        if (u.name == g->name) {
          existing = &u;
          break;
        }
      }
      if (existing != nullptr) {
        if (!(existing->type == g->type)) {
          Fail(prog, StrFormat("uniform '%s' declared with different types "
                               "in the two stages",
                               g->name.c_str()));
          continue;
        }
        (is_vertex ? existing->vs_slot : existing->fs_slot) = g->slot;
        continue;
      }
      UniformInfo u;
      u.name = g->name;
      u.type = g->type;
      (is_vertex ? u.vs_slot : u.fs_slot) = g->slot;
      prog.uniforms.push_back(u);
    }
  };
  add_uniforms(*prog.vs, true);
  add_uniforms(*prog.fs, false);

  // Assign dense locations; arrays get one location per element, and both
  // "name" and "name[i]" resolve, as the ES API requires.
  for (std::size_t ui = 0; ui < prog.uniforms.size(); ++ui) {
    UniformInfo& u = prog.uniforms[ui];
    u.base_location = static_cast<int>(prog.locations.size());
    const int elements = u.type.IsArray() ? u.type.array_size : 1;
    for (int e = 0; e < elements; ++e) {
      prog.locations.push_back({static_cast<int>(ui), e});
      if (e == 0) {
        prog.uniform_locations[u.name] = u.base_location;
        if (u.type.IsArray()) {
          prog.uniform_locations[u.name + "[0]"] = u.base_location;
        }
      } else {
        prog.uniform_locations[StrFormat("%s[%d]", u.name.c_str(), e)] =
            u.base_location + e;
      }
    }
  }

  // --- fragment output discovery (paper challenge 8: exactly one output).
  const bool uses_color = ReferencesVariable(*prog.fs, "gl_FragColor");
  const bool uses_data = ReferencesVariable(*prog.fs, "gl_FragData");
  if (uses_color && uses_data) {
    Fail(prog, "fragment shader statically uses both gl_FragColor and "
               "gl_FragData");
  }
  prog.uses_frag_data = uses_data;

  if (!prog.link_ok) return;

  // --- instantiate executors and cache gl_* slots. Both engines are built
  // here: the interpreter oracle and the bytecode VM (lowered once, cached
  // on the program object for the lifetime of the link).
  prog.vexec = std::make_unique<glsl::ShaderExec>(*prog.vs, alu);
  prog.fexec = std::make_unique<glsl::ShaderExec>(*prog.fs, alu);
  prog.vs_bytecode = glsl::LowerToBytecode(*prog.vs);
  prog.fs_bytecode = glsl::LowerToBytecode(*prog.fs);
  prog.vvm = std::make_unique<glsl::VmExec>(prog.vs_bytecode, alu);
  prog.fvm = std::make_unique<glsl::VmExec>(prog.fs_bytecode, alu);
  prog.fs_can_trap = prog.fs_bytecode->CanTrap();
  prog.vs_position_slot = prog.vexec->GlobalSlot("gl_Position");
  prog.vs_point_size_slot = prog.vexec->GlobalSlot("gl_PointSize");
  prog.fs_frag_color_slot = prog.fexec->GlobalSlot("gl_FragColor");
  prog.fs_frag_data_slot = prog.fexec->GlobalSlot("gl_FragData");
  prog.fs_frag_coord_slot = prog.fexec->GlobalSlot("gl_FragCoord");
  prog.fs_front_facing_slot = prog.fexec->GlobalSlot("gl_FrontFacing");
  prog.fs_point_coord_slot = prog.fexec->GlobalSlot("gl_PointCoord");
}

}  // namespace mgpu::gles2
