#include "gles2/raster.h"

#include <algorithm>
#include <climits>
#include <cmath>

namespace mgpu::gles2 {
namespace {

constexpr float kNearEps = 1e-6f;

// Emitter policies: how a covered fragment leaves the pixel loops. The
// templated emission code writes interpolated varying cell k at
// VarBase()[k * kVarStride] and then calls Commit — so the scalar emitter
// (kVarStride == 1, a local buffer handed to the FragmentSink) and the
// batch emitter (kVarStride == kFragBatchWidth, writing the current lane's
// column of the SoA planes directly) share one set of coverage and
// interpolation loops, and therefore emit identical fragments in identical
// order by construction.
struct SinkEmitter {
  const FragmentSink& sink;
  // Only the first `varying_cells` cells are ever written and read; the
  // tail stays uninitialized on purpose (zero-filling all cells per pixel
  // dominated small-kernel rasterization).
  std::array<float, kMaxVaryingCells> vars;

  static constexpr int kVarStride = 1;
  [[nodiscard]] float* VarBase() { return vars.data(); }
  void Commit(int px, int py, float z, bool front, float ps, float pt) {
    sink(px, py, z, vars.data(), front, ps, pt);
  }
};

struct BatchEmitter {
  FragmentBatch& b;
  const BatchFlushFn& flush;

  static constexpr int kVarStride = kFragBatchWidth;
  [[nodiscard]] float* VarBase() {
    return &b.varyings[static_cast<std::size_t>(b.count)];
  }
  void Commit(int px, int py, float z, bool front, float ps, float pt) {
    const std::size_t l = static_cast<std::size_t>(b.count);
    b.x[l] = px;
    b.y[l] = py;
    b.depth[l] = z;
    b.front[l] = front ? 1 : 0;
    b.point_s[l] = ps;
    b.point_t[l] = pt;
    if (++b.count == b.width) flush();
  }
};

struct DeviceVertex {
  double x = 0.0, y = 0.0, z = 0.0;  // window coordinates
  double inv_w = 1.0;
  std::array<float, kMaxVaryingCells> varyings{};
  float point_size = 1.0f;
};

DeviceVertex ToDevice(const RasterVertex& v, int varying_cells,
                      const RasterState& s) {
  DeviceVertex d;
  const double w = v.clip[3];
  const double inv_w = 1.0 / w;
  const double xn = v.clip[0] * inv_w;
  const double yn = v.clip[1] * inv_w;
  const double zn = v.clip[2] * inv_w;
  d.x = s.viewport_x + (xn + 1.0) * 0.5 * s.viewport_w;
  d.y = s.viewport_y + (yn + 1.0) * 0.5 * s.viewport_h;
  d.z = (zn + 1.0) * 0.5;  // default glDepthRangef(0, 1)
  d.inv_w = inv_w;
  for (int i = 0; i < varying_cells && i < kMaxVaryingCells; ++i) {
    d.varyings[static_cast<std::size_t>(i)] =
        i < static_cast<int>(v.varyings.size()) ? v.varyings[static_cast<std::size_t>(i)] : 0.0f;
  }
  d.point_size = v.point_size;
  return d;
}

// Clips a polygon (in clip space, varyings linear in clip space) against the
// plane w >= kNearEps. Sutherland-Hodgman on a single plane.
std::vector<RasterVertex> ClipNear(const std::vector<RasterVertex>& poly,
                                   int varying_cells) {
  std::vector<RasterVertex> out;
  const auto n = poly.size();
  for (std::size_t i = 0; i < n; ++i) {
    const RasterVertex& a = poly[i];
    const RasterVertex& b = poly[(i + 1) % n];
    const bool a_in = a.clip[3] >= kNearEps;
    const bool b_in = b.clip[3] >= kNearEps;
    auto lerp = [&](float t) {
      RasterVertex m;
      for (int k = 0; k < 4; ++k) {
        m.clip[static_cast<std::size_t>(k)] =
            a.clip[static_cast<std::size_t>(k)] +
            t * (b.clip[static_cast<std::size_t>(k)] -
                 a.clip[static_cast<std::size_t>(k)]);
      }
      m.varyings.resize(static_cast<std::size_t>(varying_cells));
      for (int k = 0; k < varying_cells; ++k) {
        const float av = k < static_cast<int>(a.varyings.size())
                             ? a.varyings[static_cast<std::size_t>(k)] : 0.0f;
        const float bv = k < static_cast<int>(b.varyings.size())
                             ? b.varyings[static_cast<std::size_t>(k)] : 0.0f;
        m.varyings[static_cast<std::size_t>(k)] = av + t * (bv - av);
      }
      m.point_size = a.point_size;
      return m;
    };
    if (a_in) out.push_back(a);
    if (a_in != b_in) {
      const float t = (kNearEps - a.clip[3]) / (b.clip[3] - a.clip[3]);
      out.push_back(lerp(t));
    }
  }
  return out;
}

double Orient2d(double ax, double ay, double bx, double by, double cx,
                double cy) {
  return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax);
}

// Top-left fill rule for a CCW triangle in a y-up coordinate system: an edge
// (a -> b) owns its boundary pixels when it is a "left" edge (heading
// downward... here upward in y-up CCW = dy > 0) or the "top" horizontal edge
// (dy == 0 and dx < 0). Verified by the exact-coverage tests in
// gles2_raster_test.cc (two triangles sharing a diagonal must shade every
// pixel exactly once — the paper's challenge 2 quad).
bool EdgeIsTopLeft(double dx, double dy) {
  if (dy == 0.0) return dx < 0.0;
  return dy > 0.0;
}

// Facing/cull decision shared by EmitTriangle and TriangleBounds (the
// binner and the rasterizer must agree, or tiles could be dropped/wasted).
// With y-up window coords, positive area = counter-clockwise. Returns true
// when the triangle is culled; *front reports facingness either way.
bool CullTest(double area, const RasterState& s, bool* front) {
  const bool ccw = area > 0.0;
  *front = (s.front_face == GL_CCW) == ccw;
  if (!s.cull_enabled) return false;
  if (s.cull_face == GL_FRONT_AND_BACK) return true;
  return *front == (s.cull_face == GL_FRONT);
}

template <typename Emitter>
void EmitTriangle(const DeviceVertex& d0, const DeviceVertex& d1,
                  const DeviceVertex& d2, int varying_cells,
                  const RasterState& s, Emitter& emit) {
  const double area = Orient2d(d0.x, d0.y, d1.x, d1.y, d2.x, d2.y);
  if (area == 0.0) return;

  bool front = false;
  if (CullTest(area, s, &front)) return;

  // Wind to CCW for a uniform fill rule.
  const bool ccw = area > 0.0;
  const DeviceVertex& a = d0;
  const DeviceVertex& b = ccw ? d1 : d2;
  const DeviceVertex& c = ccw ? d2 : d1;
  const double abs_area = std::fabs(area);

  int min_x = static_cast<int>(std::floor(std::min({a.x, b.x, c.x})));
  int max_x = static_cast<int>(std::ceil(std::max({a.x, b.x, c.x})));
  int min_y = static_cast<int>(std::floor(std::min({a.y, b.y, c.y})));
  int max_y = static_cast<int>(std::ceil(std::max({a.y, b.y, c.y})));
  min_x = std::max({min_x, 0, s.clip_x0});
  min_y = std::max({min_y, 0, s.clip_y0});
  max_x = std::min({max_x, s.target_w, s.clip_x1});
  max_y = std::min({max_y, s.target_h, s.clip_y1});
  if (min_x >= max_x || min_y >= max_y) return;

  const bool tl0 = EdgeIsTopLeft(c.x - b.x, c.y - b.y);  // edge b->c (w0)
  const bool tl1 = EdgeIsTopLeft(a.x - c.x, a.y - c.y);  // edge c->a (w1)
  const bool tl2 = EdgeIsTopLeft(b.x - a.x, b.y - a.y);  // edge a->b (w2)

  // Edge setup hoisted out of the pixel loop: each edge function is affine
  // in the sample position, so it is evaluated exactly (Orient2d) once per
  // row at the row anchor and stepped by its constant x-derivative across
  // the row. For pixel-aligned vertex coordinates (the GPGPU quad and the
  // exact-coverage corpus) anchor and increments are exactly representable
  // in double, so the stepped values equal direct evaluation bit-for-bit —
  // the shared-diagonal tests below guard this.
  const double dw0dx = b.y - c.y;
  const double dw1dx = c.y - a.y;
  const double dw2dx = a.y - b.y;

  for (int py = min_y; py < max_y; ++py) {
    const double sy = py + 0.5;
    const double sx0 = min_x + 0.5;
    double w0 = Orient2d(b.x, b.y, c.x, c.y, sx0, sy);
    double w1 = Orient2d(c.x, c.y, a.x, a.y, sx0, sy);
    double w2 = Orient2d(a.x, a.y, b.x, b.y, sx0, sy);
    for (int px = min_x; px < max_x;
         ++px, w0 += dw0dx, w1 += dw1dx, w2 += dw2dx) {
      const bool in0 = w0 > 0.0 || (w0 == 0.0 && tl0);
      const bool in1 = w1 > 0.0 || (w1 == 0.0 && tl1);
      const bool in2 = w2 > 0.0 || (w2 == 0.0 && tl2);
      if (!in0 || !in1 || !in2) continue;

      const double ba = w0 / abs_area;
      const double bb = w1 / abs_area;
      const double bc = w2 / abs_area;
      const double z = ba * a.z + bb * b.z + bc * c.z;
      // Perspective-correct interpolation (exact linear when w == 1, the
      // GPGPU case, so kernel indices arrive exactly at (i + 0.5) / N).
      const double pa = ba * a.inv_w;
      const double pb = bb * b.inv_w;
      const double pc = bc * c.inv_w;
      const double denom = pa + pb + pc;
      float* const vb = emit.VarBase();
      for (int k = 0; k < varying_cells; ++k) {
        const std::size_t ki = static_cast<std::size_t>(k);
        vb[static_cast<std::size_t>(k) * Emitter::kVarStride] =
            static_cast<float>((pa * a.varyings[ki] + pb * b.varyings[ki] +
                                pc * c.varyings[ki]) /
                               denom);
      }
      emit.Commit(px, py, static_cast<float>(std::clamp(z, 0.0, 1.0)), front,
                  0.0f, 0.0f);
    }
  }
}

template <typename Emitter>
void RasterizeTriangleT(const RasterVertex& v0, const RasterVertex& v1,
                        const RasterVertex& v2, int varying_cells,
                        const RasterState& state, Emitter& emit) {
  // Near-plane (w > 0) clipping; everything else is handled by the scissor
  // to the render target in EmitTriangle.
  const bool in0 = v0.clip[3] >= kNearEps;
  const bool in1 = v1.clip[3] >= kNearEps;
  const bool in2 = v2.clip[3] >= kNearEps;
  if (in0 && in1 && in2) {
    EmitTriangle(ToDevice(v0, varying_cells, state),
                 ToDevice(v1, varying_cells, state),
                 ToDevice(v2, varying_cells, state), varying_cells, state,
                 emit);
    return;
  }
  const std::vector<RasterVertex> poly =
      ClipNear({v0, v1, v2}, varying_cells);
  if (poly.size() < 3) return;
  const DeviceVertex d0 = ToDevice(poly[0], varying_cells, state);
  for (std::size_t i = 1; i + 1 < poly.size(); ++i) {
    EmitTriangle(d0, ToDevice(poly[i], varying_cells, state),
                 ToDevice(poly[i + 1], varying_cells, state), varying_cells,
                 state, emit);
  }
}

template <typename Emitter>
void RasterizePointT(const RasterVertex& v, int varying_cells,
                     const RasterState& state, Emitter& emit) {
  if (v.clip[3] < kNearEps) return;
  const DeviceVertex d = ToDevice(v, varying_cells, state);
  const double size = std::max(1.0f, d.point_size);
  const double half = size * 0.5;
  int min_x = static_cast<int>(std::floor(d.x - half));
  int max_x = static_cast<int>(std::ceil(d.x + half));
  int min_y = static_cast<int>(std::floor(d.y - half));
  int max_y = static_cast<int>(std::ceil(d.y + half));
  min_x = std::max({min_x, 0, state.clip_x0});
  min_y = std::max({min_y, 0, state.clip_y0});
  max_x = std::min({max_x, state.target_w, state.clip_x1});
  max_y = std::min({max_y, state.target_h, state.clip_y1});
  for (int py = min_y; py < max_y; ++py) {
    for (int px = min_x; px < max_x; ++px) {
      const double sx = px + 0.5;
      const double sy = py + 0.5;
      if (std::fabs(sx - d.x) > half || std::fabs(sy - d.y) > half) continue;
      const float ps = static_cast<float>((sx - (d.x - half)) / size);
      const float pt = static_cast<float>(1.0 - (sy - (d.y - half)) / size);
      float* const vb = emit.VarBase();
      for (int k = 0; k < varying_cells; ++k) {
        vb[static_cast<std::size_t>(k) * Emitter::kVarStride] =
            d.varyings[static_cast<std::size_t>(k)];
      }
      emit.Commit(px, py, static_cast<float>(std::clamp(d.z, 0.0, 1.0)),
                  true, ps, pt);
    }
  }
}

}  // namespace

void RasterizeTriangle(const RasterVertex& v0, const RasterVertex& v1,
                       const RasterVertex& v2, int varying_cells,
                       const RasterState& state, const FragmentSink& sink) {
  SinkEmitter emit{sink, {}};
  RasterizeTriangleT(v0, v1, v2, varying_cells, state, emit);
}

void RasterizeTriangle(const RasterVertex& v0, const RasterVertex& v1,
                       const RasterVertex& v2, int varying_cells,
                       const RasterState& state, FragmentBatch& batch,
                       const BatchFlushFn& flush) {
  BatchEmitter emit{batch, flush};
  RasterizeTriangleT(v0, v1, v2, varying_cells, state, emit);
}

void RasterizePoint(const RasterVertex& v, int varying_cells,
                    const RasterState& state, const FragmentSink& sink) {
  SinkEmitter emit{sink, {}};
  RasterizePointT(v, varying_cells, state, emit);
}

void RasterizePoint(const RasterVertex& v, int varying_cells,
                    const RasterState& state, FragmentBatch& batch,
                    const BatchFlushFn& flush) {
  BatchEmitter emit{batch, flush};
  RasterizePointT(v, varying_cells, state, emit);
}

namespace {

// The line's pixel walk, shared by RasterizeLine and LineTouchedTiles so
// the binner sees exactly the pixels the rasterizer emits. Calls
// fn(t, px, py) for each deduplicated step, pre-target-clip; fn returning
// false stops the walk (used to bail once a monotone walk has passed its
// clip rect for good).
template <typename Fn>
void WalkLine(const DeviceVertex& a, const DeviceVertex& b, Fn&& fn) {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const int steps =
      std::max(1, static_cast<int>(std::ceil(std::max(std::fabs(dx),
                                                      std::fabs(dy)))));
  int last_x = INT_MIN, last_y = INT_MIN;
  for (int i = 0; i <= steps; ++i) {
    const double t = static_cast<double>(i) / steps;
    const int px = static_cast<int>(std::floor(a.x + t * dx));
    const int py = static_cast<int>(std::floor(a.y + t * dy));
    if (px == last_x && py == last_y) continue;
    last_x = px;
    last_y = py;
    if (!fn(t, px, py)) return;
  }
}

}  // namespace

namespace {

template <typename Emitter>
void RasterizeLineT(const RasterVertex& v0, const RasterVertex& v1,
                    int varying_cells, const RasterState& state,
                    Emitter& emit) {
  if (v0.clip[3] < kNearEps || v1.clip[3] < kNearEps) return;
  const DeviceVertex a = ToDevice(v0, varying_cells, state);
  const DeviceVertex b = ToDevice(v1, varying_cells, state);
  // Each pixel coordinate advances in one direction only, so once the walk
  // has passed the clip rect's far side on either axis it can never
  // re-enter — stop instead of stepping the remainder (per-tile runs of a
  // long line would otherwise each walk the full length). Stopping only
  // skips steps that emit nothing, so the emitted sequence is unchanged.
  const bool x_inc = b.x >= a.x;
  const bool y_inc = b.y >= a.y;
  WalkLine(a, b, [&](double t, int px, int py) {
    if ((x_inc ? px >= state.clip_x1 : px < state.clip_x0) ||
        (y_inc ? py >= state.clip_y1 : py < state.clip_y0)) {
      return false;
    }
    if (px < 0 || py < 0 || px >= state.target_w || py >= state.target_h) {
      return true;
    }
    // WalkLine's step dedup sees every step regardless of the clip rect, so
    // per-tile runs of the same line visit identical (px, py) prefixes; the
    // rect only filters emission.
    if (px < state.clip_x0 || py < state.clip_y0 || px >= state.clip_x1 ||
        py >= state.clip_y1) {
      return true;
    }
    // Perspective-correct parameter along the line.
    const double pw = (1.0 - t) * a.inv_w + t * b.inv_w;
    float* const vb = emit.VarBase();
    for (int k = 0; k < varying_cells; ++k) {
      const std::size_t ki = static_cast<std::size_t>(k);
      vb[static_cast<std::size_t>(k) * Emitter::kVarStride] =
          static_cast<float>(((1.0 - t) * a.inv_w * a.varyings[ki] +
                              t * b.inv_w * b.varyings[ki]) /
                             pw);
    }
    const double z = (1.0 - t) * a.z + t * b.z;
    emit.Commit(px, py, static_cast<float>(std::clamp(z, 0.0, 1.0)), true,
                0.0f, 0.0f);
    return true;
  });
}

}  // namespace

void RasterizeLine(const RasterVertex& v0, const RasterVertex& v1,
                   int varying_cells, const RasterState& state,
                   const FragmentSink& sink) {
  SinkEmitter emit{sink, {}};
  RasterizeLineT(v0, v1, varying_cells, state, emit);
}

void RasterizeLine(const RasterVertex& v0, const RasterVertex& v1,
                   int varying_cells, const RasterState& state,
                   FragmentBatch& batch, const BatchFlushFn& flush) {
  BatchEmitter emit{batch, flush};
  RasterizeLineT(v0, v1, varying_cells, state, emit);
}

namespace {

// Clamps a device-space bbox to the target and reports emptiness.
bool FinishRect(double fx0, double fy0, double fx1, double fy1,
                const RasterState& s, PixelRect* out) {
  out->x0 = std::max(static_cast<int>(std::floor(fx0)), 0);
  out->y0 = std::max(static_cast<int>(std::floor(fy0)), 0);
  out->x1 = std::min(static_cast<int>(std::ceil(fx1)), s.target_w);
  out->y1 = std::min(static_cast<int>(std::ceil(fy1)), s.target_h);
  return !out->Empty();
}

}  // namespace

bool TriangleBounds(const RasterVertex& v0, const RasterVertex& v1,
                    const RasterVertex& v2, const RasterState& state,
                    PixelRect* out) {
  const bool in0 = v0.clip[3] >= kNearEps;
  const bool in1 = v1.clip[3] >= kNearEps;
  const bool in2 = v2.clip[3] >= kNearEps;
  if (in0 && in1 && in2) {
    const DeviceVertex a = ToDevice(v0, 0, state);
    const DeviceVertex b = ToDevice(v1, 0, state);
    const DeviceVertex c = ToDevice(v2, 0, state);
    const double area = Orient2d(a.x, a.y, b.x, b.y, c.x, c.y);
    if (area == 0.0) return false;
    bool front = false;
    if (CullTest(area, state, &front)) return false;
    return FinishRect(std::min({a.x, b.x, c.x}), std::min({a.y, b.y, c.y}),
                      std::max({a.x, b.x, c.x}), std::max({a.y, b.y, c.y}),
                      state, out);
  }
  // Near-clipped: bound the clipped polygon (no cull test here — it is
  // conservative to bin a culled sliver; the rasterizer drops it per tile).
  const std::vector<RasterVertex> poly = ClipNear({v0, v1, v2}, 0);
  if (poly.size() < 3) return false;
  double fx0 = 0.0, fy0 = 0.0, fx1 = 0.0, fy1 = 0.0;
  bool first = true;
  for (const RasterVertex& v : poly) {
    const DeviceVertex d = ToDevice(v, 0, state);
    if (first) {
      fx0 = fx1 = d.x;
      fy0 = fy1 = d.y;
      first = false;
    } else {
      fx0 = std::min(fx0, d.x);
      fy0 = std::min(fy0, d.y);
      fx1 = std::max(fx1, d.x);
      fy1 = std::max(fy1, d.y);
    }
  }
  return FinishRect(fx0, fy0, fx1, fy1, state, out);
}

bool PointBounds(const RasterVertex& v, const RasterState& state,
                 PixelRect* out) {
  if (v.clip[3] < kNearEps) return false;
  const DeviceVertex d = ToDevice(v, 0, state);
  const double half = std::max(1.0f, d.point_size) * 0.5;
  return FinishRect(d.x - half, d.y - half, d.x + half, d.y + half, state,
                    out);
}

void LineTouchedTiles(const RasterVertex& v0, const RasterVertex& v1,
                      const RasterState& state, int tile_size,
                      const std::function<void(int, int)>& tile_fn) {
  if (v0.clip[3] < kNearEps || v1.clip[3] < kNearEps) return;
  const DeviceVertex a = ToDevice(v0, 0, state);
  const DeviceVertex b = ToDevice(v1, 0, state);
  const bool x_inc = b.x >= a.x;
  const bool y_inc = b.y >= a.y;
  int last_tx = INT_MIN, last_ty = INT_MIN;
  WalkLine(a, b, [&](double, int px, int py) {
    // Monotone walk: once past the target's far side on either axis the
    // line never comes back in.
    if ((x_inc ? px >= state.target_w : px < 0) ||
        (y_inc ? py >= state.target_h : py < 0)) {
      return false;
    }
    if (px < 0 || py < 0 || px >= state.target_w || py >= state.target_h) {
      return true;
    }
    const int tx = px / tile_size;
    const int ty = py / tile_size;
    // The walk's pixel coordinates advance monotonically (each axis one
    // direction only), so tile pairs repeat only consecutively: comparing
    // against the previous pair is a complete dedup.
    if (tx == last_tx && ty == last_ty) return true;
    last_tx = tx;
    last_ty = ty;
    tile_fn(tx, ty);
    return true;
  });
}

}  // namespace mgpu::gles2
