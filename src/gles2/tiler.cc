#include "gles2/tiler.h"

#include <algorithm>

namespace mgpu::gles2 {

TileBinner::TileBinner(int target_w, int target_h) {
  tiles_x_ = std::max(0, (target_w + kTileSize - 1) / kTileSize);
  tiles_y_ = std::max(0, (target_h + kTileSize - 1) / kTileSize);
  tiles_.resize(static_cast<std::size_t>(tiles_x_) * tiles_y_);
  for (int ty = 0; ty < tiles_y_; ++ty) {
    for (int tx = 0; tx < tiles_x_; ++tx) {
      Tile& t = tiles_[static_cast<std::size_t>(ty) * tiles_x_ + tx];
      t.rect.x0 = tx * kTileSize;
      t.rect.y0 = ty * kTileSize;
      t.rect.x1 = std::min(t.rect.x0 + kTileSize, target_w);
      t.rect.y1 = std::min(t.rect.y0 + kTileSize, target_h);
    }
  }
}

void TileBinner::Bin(std::uint32_t prim_index, const PixelRect& bounds) {
  if (bounds.Empty() || tiles_.empty()) return;
  const int tx0 = std::clamp(bounds.x0 / kTileSize, 0, tiles_x_ - 1);
  const int ty0 = std::clamp(bounds.y0 / kTileSize, 0, tiles_y_ - 1);
  const int tx1 = std::clamp((bounds.x1 - 1) / kTileSize, 0, tiles_x_ - 1);
  const int ty1 = std::clamp((bounds.y1 - 1) / kTileSize, 0, tiles_y_ - 1);
  for (int ty = ty0; ty <= ty1; ++ty) {
    for (int tx = tx0; tx <= tx1; ++tx) {
      tiles_[static_cast<std::size_t>(ty) * tiles_x_ + tx].prims.push_back(
          prim_index);
    }
  }
}

void TileBinner::BinTile(std::uint32_t prim_index, int tx, int ty) {
  if (tx < 0 || ty < 0 || tx >= tiles_x_ || ty >= tiles_y_) return;
  tiles_[static_cast<std::size_t>(ty) * tiles_x_ + tx].prims.push_back(
      prim_index);
}

std::vector<std::uint32_t> TileBinner::NonEmptyTiles() const {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < tiles_.size(); ++i) {
    if (!tiles_[i].prims.empty()) {
      out.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return out;
}

}  // namespace mgpu::gles2
