#include "gles2/tiler.h"

#include <algorithm>
#include <cassert>
#include <new>

#include "common/fault.h"

namespace mgpu::gles2 {

namespace {

// Fibonacci hashing spreads consecutive row-major tile indices (the common
// case: a bounding box walks them in order) across the table.
inline std::size_t HashTile(std::uint32_t tile_index, std::size_t mask) {
  return static_cast<std::size_t>(
             (static_cast<std::uint64_t>(tile_index) * 0x9E3779B97F4A7C15ull) >>
             32) &
         mask;
}

}  // namespace

void TileBinner::BeginDraw(int target_w, int target_h) {
  target_w_ = target_w;
  target_h_ = target_h;
  tiles_x_ = std::max(0, (target_w + kTileSize - 1) / kTileSize);
  tiles_y_ = std::max(0, (target_h + kTileSize - 1) / kTileSize);
  used_ = 0;
  // Invalidate every table entry by moving to a fresh stamp; the slots and
  // the table keep their storage (slot prims are cleared on reuse in
  // SlotFor, which preserves their capacity too).
  ++stamp_;
}

TileBinner::Tile& TileBinner::SlotFor(int tx, int ty) {
  const std::uint32_t tile_index =
      static_cast<std::uint32_t>(ty) * static_cast<std::uint32_t>(tiles_x_) +
      static_cast<std::uint32_t>(tx);
  // Grow at 50% load so probe chains stay short. Doubling on a high-water
  // mark means a steady-state draw loop stops growing after its first lap.
  if (table_.empty() || (used_ + 1) * 2 > table_.size()) {
    // Injectable growth failure: binning happens before any framebuffer
    // write, so the context turns this into a clean no-op draw.
    if (fault::ShouldFail(fault::Site::kBinnerGrow)) throw std::bad_alloc();
    Rehash(std::max<std::size_t>(16, (used_ + 1) * 4));
  }
  const std::size_t mask = table_.size() - 1;
  std::size_t at = HashTile(tile_index, mask);
  for (;;) {
    TableEntry& e = table_[at];
    if (e.stamp != stamp_) {
      // Free (or stale from an earlier draw): claim it and a slot.
      e.tile_index = tile_index;
      e.stamp = stamp_;
      e.slot = static_cast<std::uint32_t>(used_);
      if (used_ == slots_.size()) {
        slots_.emplace_back();
      }
      Tile& t = slots_[used_++];
      t.prims.clear();  // keeps capacity from previous draws
      t.rect.x0 = tx * kTileSize;
      t.rect.y0 = ty * kTileSize;
      t.rect.x1 = std::min(t.rect.x0 + kTileSize, target_w_);
      t.rect.y1 = std::min(t.rect.y0 + kTileSize, target_h_);
      return t;
    }
    if (e.tile_index == tile_index) return slots_[e.slot];
    at = (at + 1) & mask;
  }
}

void TileBinner::Rehash(std::size_t min_entries) {
  std::size_t n = 16;
  while (n < min_entries) n *= 2;
  std::vector<TableEntry> old = std::move(table_);
  table_.assign(n, TableEntry{});
  const std::size_t mask = n - 1;
  for (const TableEntry& e : old) {
    if (e.stamp != stamp_) continue;
    std::size_t at = HashTile(e.tile_index, mask);
    while (table_[at].stamp == stamp_) at = (at + 1) & mask;
    table_[at] = e;
  }
}

void TileBinner::Bin(std::uint32_t prim_index, const PixelRect& bounds) {
  if (bounds.Empty() || tiles_x_ <= 0 || tiles_y_ <= 0) return;
  const int tx0 = std::clamp(bounds.x0 / kTileSize, 0, tiles_x_ - 1);
  const int ty0 = std::clamp(bounds.y0 / kTileSize, 0, tiles_y_ - 1);
  const int tx1 = std::clamp((bounds.x1 - 1) / kTileSize, 0, tiles_x_ - 1);
  const int ty1 = std::clamp((bounds.y1 - 1) / kTileSize, 0, tiles_y_ - 1);
  for (int ty = ty0; ty <= ty1; ++ty) {
    for (int tx = tx0; tx <= tx1; ++tx) {
      SlotFor(tx, ty).prims.push_back(prim_index);
    }
  }
}

void TileBinner::BinTile(std::uint32_t prim_index, int tx, int ty) {
  if (tx < 0 || ty < 0 || tx >= tiles_x_ || ty >= tiles_y_) return;
  SlotFor(tx, ty).prims.push_back(prim_index);
}

const TileBinner::Tile& TileBinner::tile(std::uint32_t index) const {
  if (!table_.empty()) {
    const std::size_t mask = table_.size() - 1;
    for (std::size_t at = HashTile(index, mask);
         table_[at].stamp == stamp_; at = (at + 1) & mask) {
      if (table_[at].tile_index == index) return slots_[table_[at].slot];
    }
  }
  // Contract violation (an index not binned this draw): an empty tile is
  // the harmless answer — its rect rasterizes nothing.
  assert(false && "tile() requires an index binned this draw");
  static const Tile kEmpty{};
  return kEmpty;
}

void TileBinner::NonEmptyTiles(std::vector<std::uint32_t>* out) const {
  out->clear();
  out->reserve(used_);
  // Recover each used slot's row-major index from its rect (cheaper than
  // storing it twice) and sort ascending to reproduce the dense grid walk.
  for (std::size_t i = 0; i < used_; ++i) {
    const Tile& t = slots_[i];
    out->push_back(
        static_cast<std::uint32_t>(t.rect.y0 / kTileSize) *
            static_cast<std::uint32_t>(tiles_x_) +
        static_cast<std::uint32_t>(t.rect.x0 / kTileSize));
  }
  std::sort(out->begin(), out->end());
}

}  // namespace mgpu::gles2
