// CPU reference implementations of every workload (the baselines the paper
// measures against on the Pi's ARM1176), plus analytic operation-count
// formulas that feed the ARM1176 timing model. The formulas model the naive
// scalar code a C compiler emits for these loops; they are validated against
// instrumented loop structure by tests.
#ifndef MGPU_CPUREF_CPUREF_H_
#define MGPU_CPUREF_CPUREF_H_

#include <cstdint>
#include <span>
#include <utility>

#include "vc4/timing.h"

namespace mgpu::cpuref {

// --- element-wise add (the paper's "sum" benchmark) ---
void AddF32(std::span<const float> a, std::span<const float> b,
            std::span<float> out);
void AddI32(std::span<const std::int32_t> a, std::span<const std::int32_t> b,
            std::span<std::int32_t> out);
void AddU32(std::span<const std::uint32_t> a,
            std::span<const std::uint32_t> b, std::span<std::uint32_t> out);
void AddU8(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
           std::span<std::uint8_t> out);
void AddI8(std::span<const std::int8_t> a, std::span<const std::int8_t> b,
           std::span<std::int8_t> out);

void SaxpyF32(float alpha, std::span<const float> x, std::span<const float> y,
              std::span<float> out);

// --- GEMM (the paper's sgemm benchmark) ---
void SgemmF32(int n, std::span<const float> a, std::span<const float> b,
              std::span<float> out);
// Cache-blocked variant (baseline for the blocked-vs-naive ablation).
void SgemmBlockedF32(int n, std::span<const float> a,
                     std::span<const float> b, std::span<float> out,
                     int block = 32);
void GemmI32(int n, std::span<const std::int32_t> a,
             std::span<const std::int32_t> b, std::span<std::int32_t> out);

// --- convolution / reduction / minmax ---
void Conv3x3U8(int w, int h, std::span<const std::uint8_t> img,
               std::span<const float> weights, std::span<std::uint8_t> out);
[[nodiscard]] float ReduceSumF32(std::span<const float> v);
// Tree-ordered (4:1) reduction matching the GPU kernel's summation order,
// for bit-exact comparison.
[[nodiscard]] float ReduceSumTree4F32(std::span<const float> v);
[[nodiscard]] std::pair<float, float> MinMaxF32(std::span<const float> v);

// --- analytic ARM1176 operation counts ---
[[nodiscard]] vc4::CpuWork AddWorkF32(std::uint64_t n);
[[nodiscard]] vc4::CpuWork AddWorkI32(std::uint64_t n);
[[nodiscard]] vc4::CpuWork SaxpyWorkF32(std::uint64_t n);
[[nodiscard]] vc4::CpuWork SgemmWorkF32(std::uint64_t n);
[[nodiscard]] vc4::CpuWork GemmWorkI32(std::uint64_t n);
[[nodiscard]] vc4::CpuWork Conv3x3WorkU8(std::uint64_t w, std::uint64_t h);
[[nodiscard]] vc4::CpuWork ReduceWorkF32(std::uint64_t n);

}  // namespace mgpu::cpuref

#endif  // MGPU_CPUREF_CPUREF_H_
