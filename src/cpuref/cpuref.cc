#include "cpuref/cpuref.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mgpu::cpuref {

void AddF32(std::span<const float> a, std::span<const float> b,
            std::span<float> out) {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] + b[i];
}

void AddI32(std::span<const std::int32_t> a, std::span<const std::int32_t> b,
            std::span<std::int32_t> out) {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] + b[i];
}

void AddU32(std::span<const std::uint32_t> a,
            std::span<const std::uint32_t> b, std::span<std::uint32_t> out) {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] + b[i];
}

void AddU8(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
           std::span<std::uint8_t> out) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(a[i] + b[i]);
  }
}

void AddI8(std::span<const std::int8_t> a, std::span<const std::int8_t> b,
           std::span<std::int8_t> out) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::int8_t>(
        static_cast<std::uint8_t>(a[i]) + static_cast<std::uint8_t>(b[i]));
  }
}

void SaxpyF32(float alpha, std::span<const float> x, std::span<const float> y,
              std::span<float> out) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = alpha * x[i] + y[i];
  }
}

void SgemmF32(int n, std::span<const float> a, std::span<const float> b,
              std::span<float> out) {
  const std::size_t un = static_cast<std::size_t>(n);
  for (std::size_t r = 0; r < un; ++r) {
    for (std::size_t c = 0; c < un; ++c) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < un; ++k) {
        acc += a[r * un + k] * b[k * un + c];
      }
      out[r * un + c] = acc;
    }
  }
}

void SgemmBlockedF32(int n, std::span<const float> a,
                     std::span<const float> b, std::span<float> out,
                     int block) {
  const std::size_t un = static_cast<std::size_t>(n);
  const std::size_t bs = static_cast<std::size_t>(block);
  std::fill(out.begin(), out.end(), 0.0f);
  for (std::size_t r0 = 0; r0 < un; r0 += bs) {
    for (std::size_t k0 = 0; k0 < un; k0 += bs) {
      for (std::size_t c0 = 0; c0 < un; c0 += bs) {
        const std::size_t r1 = std::min(r0 + bs, un);
        const std::size_t k1 = std::min(k0 + bs, un);
        const std::size_t c1 = std::min(c0 + bs, un);
        for (std::size_t r = r0; r < r1; ++r) {
          for (std::size_t k = k0; k < k1; ++k) {
            const float av = a[r * un + k];
            for (std::size_t c = c0; c < c1; ++c) {
              out[r * un + c] += av * b[k * un + c];
            }
          }
        }
      }
    }
  }
}

void GemmI32(int n, std::span<const std::int32_t> a,
             std::span<const std::int32_t> b, std::span<std::int32_t> out) {
  const std::size_t un = static_cast<std::size_t>(n);
  for (std::size_t r = 0; r < un; ++r) {
    for (std::size_t c = 0; c < un; ++c) {
      std::int32_t acc = 0;
      for (std::size_t k = 0; k < un; ++k) {
        acc += a[r * un + k] * b[k * un + c];
      }
      out[r * un + c] = acc;
    }
  }
}

void Conv3x3U8(int w, int h, std::span<const std::uint8_t> img,
               std::span<const float> weights, std::span<std::uint8_t> out) {
  auto pixel = [&](int x, int y) -> float {
    x = std::clamp(x, 0, w - 1);
    y = std::clamp(y, 0, h - 1);
    return static_cast<float>(
        img[static_cast<std::size_t>(y) * w + static_cast<std::size_t>(x)]);
  };
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      // Mirrors the GPU kernel's evaluation order: per row,
      // (left*w0 + center*w1) + right*w2, accumulated over rows.
      float acc = 0.0f;
      for (int dy = -1; dy <= 1; ++dy) {
        const int row = dy + 1;
        acc += pixel(x - 1, y + dy) * weights[static_cast<std::size_t>(row * 3)] +
               pixel(x, y + dy) * weights[static_cast<std::size_t>(row * 3 + 1)] +
               pixel(x + 1, y + dy) * weights[static_cast<std::size_t>(row * 3 + 2)];
      }
      const float clamped = std::clamp(acc, 0.0f, 255.0f);
      out[static_cast<std::size_t>(y) * w + static_cast<std::size_t>(x)] =
          static_cast<std::uint8_t>(std::floor(clamped + 0.5f));
    }
  }
}

float ReduceSumF32(std::span<const float> v) {
  float acc = 0.0f;
  for (const float x : v) acc += x;
  return acc;
}

float ReduceSumTree4F32(std::span<const float> v) {
  std::vector<float> level(v.begin(), v.end());
  level.resize((level.size() + 3) / 4 * 4, 0.0f);
  while (level.size() > 1) {
    std::vector<float> next((level.size() + 3) / 4);
    for (std::size_t i = 0; i < next.size(); ++i) {
      next[i] = level[i * 4] + level[i * 4 + 1] + level[i * 4 + 2] +
                level[i * 4 + 3];
    }
    if (next.size() > 1) next.resize((next.size() + 3) / 4 * 4, 0.0f);
    level = std::move(next);
  }
  return level[0];
}

std::pair<float, float> MinMaxF32(std::span<const float> v) {
  float mn = v.empty() ? 0.0f : v[0];
  float mx = mn;
  for (const float x : v) {
    mn = std::min(mn, x);
    mx = std::max(mx, x);
  }
  return {mn, mx};
}

// --- analytic operation counts (per element / per MAC) -------------------
// Model: naive scalar loops as compiled at -O2 for ARMv6: one load per
// input operand, one store per output, one arithmetic op per source-level
// op, one loop iteration per element (the iteration term covers index
// arithmetic and the branch).

vc4::CpuWork AddWorkF32(std::uint64_t n) {
  vc4::CpuWork w;
  w.loads = 2 * n;
  w.stores = n;
  w.fp_adds = n;
  w.iterations = n;
  return w;
}

vc4::CpuWork AddWorkI32(std::uint64_t n) {
  vc4::CpuWork w;
  w.loads = 2 * n;
  w.stores = n;
  w.int_ops = n;
  w.iterations = n;
  return w;
}

vc4::CpuWork SaxpyWorkF32(std::uint64_t n) {
  vc4::CpuWork w;
  w.loads = 2 * n;
  w.stores = n;
  w.fp_adds = n;
  w.fp_muls = n;
  w.iterations = n;
  return w;
}

vc4::CpuWork SgemmWorkF32(std::uint64_t n) {
  vc4::CpuWork w;
  const std::uint64_t macs = n * n * n;
  w.loads = 2 * macs;  // strided B access defeats the tiny L1 on ARM1176
  w.stores = n * n;
  w.fp_adds = macs;
  w.fp_muls = macs;
  w.iterations = macs;
  return w;
}

vc4::CpuWork GemmWorkI32(std::uint64_t n) {
  vc4::CpuWork w;
  const std::uint64_t macs = n * n * n;
  w.loads = 2 * macs;
  w.stores = n * n;
  w.int_ops = macs;
  w.int_muls = macs;
  w.iterations = macs;
  return w;
}

vc4::CpuWork Conv3x3WorkU8(std::uint64_t w_, std::uint64_t h) {
  vc4::CpuWork w;
  const std::uint64_t pixels = w_ * h;
  w.loads = 9 * pixels;
  w.stores = pixels;
  w.fp_adds = 9 * pixels;
  w.fp_muls = 9 * pixels;
  w.iterations = pixels;
  return w;
}

vc4::CpuWork ReduceWorkF32(std::uint64_t n) {
  vc4::CpuWork w;
  w.loads = n;
  w.fp_adds = n;
  w.iterations = n;
  w.stores = 1;
  return w;
}

}  // namespace mgpu::cpuref
