// Host-side data representation for kernel I/O (paper §IV): every C numeric
// format is carried through RGBA8 textures. Integer formats use their
// unmodified little-endian two's-complement byte layout (the paper's
// interoperability argument vs. Strzodka's custom 16-bit format); floats
// need the sign/exponent bit rotation of Fig. 2 so the biased exponent
// occupies a full byte.
#ifndef MGPU_COMPUTE_PACKING_H_
#define MGPU_COMPUTE_PACKING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "vc4/timing.h"

namespace mgpu::compute {

enum class ElemType { kU8, kI8, kU32, kI32, kF32 };

[[nodiscard]] const char* ElemTypeName(ElemType t);
// Bytes of one element in host memory.
[[nodiscard]] int ElemBytes(ElemType t);
// Elements carried per RGBA8 texel (byte formats pack 4 per texel).
[[nodiscard]] int ElemsPerTexel(ElemType t);

// --- Fig. 2: the float bit re-arrangement -------------------------------
// IEEE-754 layout:  [ s | e7..e0 | m22..m0 ]
// GPU texel layout: byte3 = e7..e0 (biased exponent), byte2 = s | m22..m16,
//                   byte1 = m15..m8, byte0 = m7..m0.
// This is a rotation of the top 9 bits by one position.
[[nodiscard]] std::uint32_t RotateFloatBitsForGpu(std::uint32_t ieee_bits);
[[nodiscard]] std::uint32_t RotateFloatBitsFromGpu(std::uint32_t gpu_bits);

// --- packing into RGBA8 texel streams -----------------------------------
// Each function appends exactly ceil(n / ElemsPerTexel) * 4 bytes. Byte
// formats pad the tail texel with zeros.
[[nodiscard]] std::vector<std::uint8_t> PackU8(std::span<const std::uint8_t> v);
[[nodiscard]] std::vector<std::uint8_t> PackI8(std::span<const std::int8_t> v);
[[nodiscard]] std::vector<std::uint8_t> PackU32(
    std::span<const std::uint32_t> v);
[[nodiscard]] std::vector<std::uint8_t> PackI32(
    std::span<const std::int32_t> v);
[[nodiscard]] std::vector<std::uint8_t> PackF32(std::span<const float> v);

// --- unpacking from RGBA8 texel streams ---------------------------------
void UnpackU8(std::span<const std::uint8_t> texels,
              std::span<std::uint8_t> out);
void UnpackI8(std::span<const std::uint8_t> texels, std::span<std::int8_t> out);
void UnpackU32(std::span<const std::uint8_t> texels,
               std::span<std::uint32_t> out);
void UnpackI32(std::span<const std::uint8_t> texels,
               std::span<std::int32_t> out);
void UnpackF32(std::span<const std::uint8_t> texels, std::span<float> out);

// CPU cost of packing/unpacking n elements of `t` — feeds the timing model's
// host term (the paper's §V: "the partial bit re-arrangements for the
// floating point data on the CPU"). Integer formats are plain copies.
[[nodiscard]] vc4::CpuWork HostPackWork(ElemType t, std::uint64_t n);

// The exact integer range representable losslessly when 32-bit integers are
// reconstructed in fp32 arithmetic (paper §IV-C: "precision equivalent to a
// 24-bit integer").
inline constexpr std::int64_t kExactIntRange = 1ll << 24;

}  // namespace mgpu::compute

#endif  // MGPU_COMPUTE_PACKING_H_
