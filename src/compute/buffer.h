// Typed device buffers over RGBA8 textures (paper challenges 3/4/5): a 1D
// array of any C numeric format becomes a 2D byte texture; matrices map one
// element per texel row-major. Downloads go through the only readback path
// ES 2.0 offers — attach the texture to an FBO and glReadPixels (challenge
// 7).
#ifndef MGPU_COMPUTE_BUFFER_H_
#define MGPU_COMPUTE_BUFFER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "compute/device.h"
#include "compute/packing.h"

namespace mgpu::compute {

class PackedBuffer {
 public:
  // 1D array of n elements; texture dimensions are chosen automatically.
  PackedBuffer(Device& device, ElemType type, std::size_t n);
  // 2D matrix (width x height elements, row-major). Byte formats require
  // width divisible by 4.
  PackedBuffer(Device& device, ElemType type, int width, int height);
  ~PackedBuffer();

  PackedBuffer(const PackedBuffer&) = delete;
  PackedBuffer& operator=(const PackedBuffer&) = delete;

  [[nodiscard]] ElemType type() const { return type_; }
  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] int tex_width() const { return tex_w_; }
  [[nodiscard]] int tex_height() const { return tex_h_; }
  [[nodiscard]] gles2::GLuint texture() const { return tex_; }

  // --- uploads (host -> texture); type must match the buffer's ElemType ---
  void Upload(std::span<const std::uint8_t> v);
  void Upload(std::span<const std::int8_t> v);
  void Upload(std::span<const std::uint32_t> v);
  void Upload(std::span<const std::int32_t> v);
  void Upload(std::span<const float> v);

  // --- downloads (texture -> host) via FBO + ReadPixels ---
  void Download(std::span<std::uint8_t> out);
  void Download(std::span<std::int8_t> out);
  void Download(std::span<std::uint32_t> out);
  void Download(std::span<std::int32_t> out);
  void Download(std::span<float> out);

  // Raw RGBA texel readback (no unpacking), for tests.
  [[nodiscard]] std::vector<std::uint8_t> DownloadRaw();

 private:
  void Init();
  void UploadTexels(const std::vector<std::uint8_t>& texels, ElemType t,
                    std::uint64_t n);
  [[nodiscard]] std::vector<std::uint8_t> ReadTexels();

  Device& device_;
  ElemType type_;
  std::size_t n_ = 0;
  int tex_w_ = 0;
  int tex_h_ = 0;
  gles2::GLuint tex_ = 0;
  gles2::GLuint fbo_ = 0;  // lazily created for downloads
};

}  // namespace mgpu::compute

#endif  // MGPU_COMPUTE_BUFFER_H_
