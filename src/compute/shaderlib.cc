#include "compute/shaderlib.h"

#include "common/strings.h"

namespace mgpu::compute {

std::string PassthroughVertexShader() {
  return R"(// Challenge 1: ES 2.0 forces a programmable vertex stage; this is the
// minimal pass-through shader the paper describes (III-1).
attribute vec2 gp_pos;
varying vec2 gp_uv;
void main() {
  gp_uv = gp_pos * 0.5 + 0.5;
  gl_Position = vec4(gp_pos, 0.0, 1.0);
}
)";
}

std::string KernelPreamble() {
  return R"(precision highp float;
varying vec2 gp_uv;
uniform vec2 gp_out_size;

// Reconstruct a byte value from a normalized channel (paper Eq. (4), robust
// rounding form: the quantized value c/255 maps back to exactly c).
float gp_byte(float f) { return floor(f * 255.0 + 0.5); }

// Inverse: encode a byte value so the framebuffer conversion (Eq. (2),
// either floor or round-to-nearest) lands on exactly that byte.
float gp_unbyte(float b) { return (b + 0.25) / 255.0; }

// Challenge 3/4: element index -> normalized 2D texture coordinate.
vec2 gp_coord(float index, vec2 size) {
  float y = floor((index + 0.5) / size.x);
  float x = index - y * size.x;
  return (vec2(x, y) + 0.5) / size;
}

// Integer texel position of this fragment (gl_FragCoord is at +0.5).
vec2 gp_pos_xy() { return floor(gl_FragCoord.xy); }

// Linear element index of this fragment in the output array.
float gp_linear_index() {
  vec2 p = gp_pos_xy();
  return p.x + p.y * gp_out_size.x;
}
)";
}

std::string UnpackName(ElemType t) {
  switch (t) {
    case ElemType::kU8: return "gp_unpack_u8";
    case ElemType::kI8: return "gp_unpack_i8";
    case ElemType::kU32: return "gp_unpack_u32";
    case ElemType::kI32: return "gp_unpack_i32";
    case ElemType::kF32: return "gp_unpack_f32";
  }
  return "";
}

std::string PackName(ElemType t) {
  switch (t) {
    case ElemType::kU8: return "gp_pack_u8";
    case ElemType::kI8: return "gp_pack_i8";
    case ElemType::kU32: return "gp_pack_u32";
    case ElemType::kI32: return "gp_pack_i32";
    case ElemType::kF32: return "gp_pack_f32";
  }
  return "";
}

std::string UnpackFunction(ElemType t) {
  switch (t) {
    case ElemType::kU8:
      // Paper §IV-A: M : [0,1] -> [0,255], applied channel-wise.
      return R"(vec4 gp_unpack_u8(vec4 t) {
  return floor(t * 255.0 + vec4(0.5));
}
)";
    case ElemType::kI8:
      // Paper §IV-B: M2 via two's complement: b >= 128 means b - 256.
      return R"(vec4 gp_unpack_i8(vec4 t) {
  vec4 b = floor(t * 255.0 + vec4(0.5));
  return b - step(vec4(128.0), b) * 256.0;
}
)";
    case ElemType::kU32:
      // Paper §IV-C Eq. (6): sum of bytes weighted by 256^i. Exact for
      // values below 2^24 (fp32 mantissa, as the paper notes).
      return R"(float gp_unpack_u32(vec4 t) {
  vec4 b = floor(t * 255.0 + vec4(0.5));
  return b.r + b.g * 256.0 + b.b * 65536.0 + b.a * 16777216.0;
}
)";
    case ElemType::kI32:
      // Paper §IV-D, reformulated at byte level so small negative values
      // stay exact in fp32 (subtracting 256^3 from a ~2^32 float would not).
      return R"(float gp_unpack_i32(vec4 t) {
  vec4 b = floor(t * 255.0 + vec4(0.5));
  if (b.a >= 128.0) {
    vec4 c = vec4(255.0) - b;  // one's complement
    return -(c.r + c.g * 256.0 + c.b * 65536.0 + c.a * 16777216.0 + 1.0);
  }
  return b.r + b.g * 256.0 + b.b * 65536.0 + b.a * 16777216.0;
}
)";
    case ElemType::kF32:
      // Paper §IV-E with the Fig. 2 layout: byte3 = biased exponent,
      // byte2 = sign | high mantissa bits, bytes1..0 = low mantissa.
      // Exponent byte 255 carries the IEEE non-finites: zero mantissa is
      // +/-Inf (exp2(128) overflows to Inf), nonzero mantissa is NaN.
      return R"(float gp_unpack_f32(vec4 t) {
  vec4 b = floor(t * 255.0 + vec4(0.5));
  float expo = b.a;
  float sgn = b.b < 128.0 ? 1.0 : -1.0;
  float mhi = b.b - step(128.0, b.b) * 128.0;
  if (expo == 0.0) { return 0.0; }  // zero (denormals flush, as on the QPU)
  if (expo == 255.0 && b.r + b.g + mhi > 0.0) { return 0.0 / 0.0; }  // NaN
  float mant = (b.r + b.g * 256.0 + mhi * 65536.0) / 8388608.0;
  return sgn * (1.0 + mant) * exp2(expo - 127.0);
}
)";
  }
  return "";
}

std::string PackFunction(ElemType t) {
  switch (t) {
    case ElemType::kU8:
      // Paper §IV-A Eq. (5): normalize back to [0,1] with a safety offset.
      return R"(vec4 gp_pack_u8(vec4 v) {
  return (clamp(floor(v + vec4(0.5)), 0.0, 255.0) + vec4(0.25)) / 255.0;
}
)";
    case ElemType::kI8:
      // Paper §IV-B inverse M2: negatives gain 256 before encoding.
      return R"(vec4 gp_pack_i8(vec4 v) {
  vec4 b = clamp(floor(v + vec4(0.5)), -128.0, 127.0);
  b += step(b, vec4(-0.5)) * 256.0;
  return (b + vec4(0.25)) / 255.0;
}
)";
    case ElemType::kU32:
      // Paper §IV-C Eq. (7): remainder chain by byte significance. All
      // divisors are powers of two, so the chain is exact in fp32.
      return R"(vec4 gp_pack_u32(float v) {
  // Round to integer; above 2^23 every fp32 value is already integral and
  // adding 0.5 would round UP across the representability gap.
  v = v < 8388608.0 ? floor(v + 0.5) : floor(v);
  v = clamp(v, 0.0, 4294967295.0);
  float b3 = floor(v / 16777216.0);
  v -= b3 * 16777216.0;
  float b2 = floor(v / 65536.0);
  v -= b2 * 65536.0;
  float b1 = floor(v / 256.0);
  float b0 = v - b1 * 256.0;
  return (vec4(b0, b1, b2, b3) + vec4(0.25)) / 255.0;
}
)";
    case ElemType::kI32:
      // Paper §IV-D inverse, at byte level (complement of |v|-1) to remain
      // exact within the 24-bit envelope.
      return R"(vec4 gp_pack_i32(float v) {
  v = abs(v) < 8388608.0 ? floor(v + 0.5) : floor(v);
  if (v < 0.0) {
    float m = -v - 1.0;
    float b3 = floor(m / 16777216.0);
    m -= b3 * 16777216.0;
    float b2 = floor(m / 65536.0);
    m -= b2 * 65536.0;
    float b1 = floor(m / 256.0);
    float b0 = m - b1 * 256.0;
    return (vec4(255.0 - b0, 255.0 - b1, 255.0 - b2, 255.0 - b3)
            + vec4(0.25)) / 255.0;
  }
  float b3 = floor(v / 16777216.0);
  v -= b3 * 16777216.0;
  float b2 = floor(v / 65536.0);
  v -= b2 * 65536.0;
  float b1 = floor(v / 256.0);
  float b0 = v - b1 * 256.0;
  return (vec4(b0, b1, b2, b3) + vec4(0.25)) / 255.0;
}
)";
    case ElemType::kF32:
      // Paper §IV-E inverse: exponent = floor(log2 |v|), mantissa scaled to
      // 23 bits, sign packed into byte2's top bit. The log2/exp2 pair is
      // where the VideoCore SFU's limited precision enters — the source of
      // the paper's "15 most significant bits" result.
      return R"(vec4 gp_pack_f32(float v) {
  if (v == 0.0) { return vec4(0.25 / 255.0); }
  // Non-finites get the IEEE encodings (exponent byte 255) instead of
  // flowing into the log2/exp2 chain, whose NaN propagation would corrupt
  // every byte of the texel.
  if (v != v) { return (vec4(0.0, 0.0, 64.0, 255.0) + vec4(0.25)) / 255.0; }
  float sgn = v < 0.0 ? 128.0 : 0.0;
  float a = abs(v);
  if (a > 3.4028234e38) {
    return (vec4(0.0, 0.0, sgn, 255.0) + vec4(0.25)) / 255.0;
  }
  float e = floor(log2(a));
  float m = a * exp2(-e) - 1.0;
  if (m < 0.0) { e -= 1.0; m = a * exp2(-e) - 1.0; }
  if (m >= 1.0) { e += 1.0; m = a * exp2(-e) - 1.0; }
  float mi = floor(m * 8388608.0 + 0.5);
  if (mi >= 8388608.0) { mi = 0.0; e += 1.0; }
  // On hardware whose exp2/log2 carry SFU error the re-derived m can still
  // land fractionally below 0 for values just under a power of two; without
  // this clamp the byte split of a negative mantissa corrupts the sign bit.
  if (mi < 0.0) { mi = 0.0; }
  float b3 = clamp(e + 127.0, 1.0, 254.0);
  float mhi = floor(mi / 65536.0);
  float rem = mi - mhi * 65536.0;
  float b1 = floor(rem / 256.0);
  float b0 = rem - b1 * 256.0;
  return (vec4(b0, b1, sgn + mhi, b3) + vec4(0.25)) / 255.0;
}
)";
  }
  return "";
}

std::string DeltaByteFunctions() {
  // The paper-literal Eq. (3)-(5) form: delta = -1/((2^8-1) * 2^8). Adding
  // |delta| before scaling compensates the fp32 rounding of c/255 so the
  // floor recovers c; the inverse subtracts delta (i.e. adds 1/65280) so the
  // floor conversion of Eq. (2) lands on the right byte.
  return R"(const float gp_delta = 1.0 / 65280.0;
float gp_unpack_u8_delta(float f) {
  return floor((f + gp_delta) * 255.0);
}
float gp_pack_u8_delta(float b) {
  return b / 255.0 + gp_delta;
}
)";
}

std::string FetchFunctions(const std::string& name, ElemType t) {
  const char* unpack = nullptr;
  const char* ret = nullptr;
  switch (t) {
    case ElemType::kU8: unpack = "gp_unpack_u8"; ret = "vec4"; break;
    case ElemType::kI8: unpack = "gp_unpack_i8"; ret = "vec4"; break;
    case ElemType::kU32: unpack = "gp_unpack_u32"; ret = "float"; break;
    case ElemType::kI32: unpack = "gp_unpack_i32"; ret = "float"; break;
    case ElemType::kF32: unpack = "gp_unpack_f32"; ret = "float"; break;
  }
  return StrFormat(
      "uniform sampler2D %s;\n"
      "uniform vec2 gp_size_%s;\n"
      "%s gp_fetch_%s(float index) {\n"
      "  return %s(texture2D(%s, gp_coord(index, gp_size_%s)));\n"
      "}\n"
      "%s gp_fetch2_%s(float x, float y) {\n"
      "  return %s(texture2D(%s, (vec2(x, y) + 0.5) / gp_size_%s));\n"
      "}\n",
      name.c_str(), name.c_str(), ret, name.c_str(), unpack, name.c_str(),
      name.c_str(), ret, name.c_str(), unpack, name.c_str(), name.c_str());
}

}  // namespace mgpu::compute
