// Library of ready-made GPGPU operations built on the kernel framework:
// the paper's two benchmarks (streaming add "sum" and sgemm, §V) for both
// integer and floating point, plus convolution, multi-pass reduction and a
// multi-output min/max (challenge 8 demo).
#ifndef MGPU_COMPUTE_OPS_H_
#define MGPU_COMPUTE_OPS_H_

#include <cstdint>
#include <span>
#include <utility>

#include "compute/device.h"

namespace mgpu::compute::ops {

// --- the paper's "sum" benchmark: element-wise c[i] = a[i] + b[i] ---------
void AddF32(Device& d, std::span<const float> a, std::span<const float> b,
            std::span<float> out);
// Integer adds are exact within the paper's 24-bit envelope.
void AddI32(Device& d, std::span<const std::int32_t> a,
            std::span<const std::int32_t> b, std::span<std::int32_t> out);
void AddU32(Device& d, std::span<const std::uint32_t> a,
            std::span<const std::uint32_t> b, std::span<std::uint32_t> out);
// Byte adds wrap modulo 256, matching C unsigned char semantics.
void AddU8(Device& d, std::span<const std::uint8_t> a,
           std::span<const std::uint8_t> b, std::span<std::uint8_t> out);
void AddI8(Device& d, std::span<const std::int8_t> a,
           std::span<const std::int8_t> b, std::span<std::int8_t> out);

// --- saxpy: out = alpha * x + y -------------------------------------------
void SaxpyF32(Device& d, float alpha, std::span<const float> x,
              std::span<const float> y, std::span<float> out);

// --- the paper's sgemm benchmark: C = A * B, n x n row-major --------------
void SgemmF32(Device& d, int n, std::span<const float> a,
              std::span<const float> b, std::span<float> out);
// Integer GEMM through the float pipeline (exact while |values| < 2^24).
void GemmI32(Device& d, int n, std::span<const std::int32_t> a,
             std::span<const std::int32_t> b, std::span<std::int32_t> out);

// --- 3x3 convolution on an 8-bit image (w divisible by 4) -----------------
// `weights` is row-major 3x3; border pixels clamp. Output is rounded and
// saturated to [0, 255].
void Conv3x3U8(Device& d, int w, int h, std::span<const std::uint8_t> img,
               std::span<const float> weights, std::span<std::uint8_t> out);

// --- multi-pass reduction (kernel-ordering pattern of challenge 7) --------
[[nodiscard]] float ReduceSumF32(Device& d, std::span<const float> v);

// --- multi-output min/max via kernel splitting (challenge 8) --------------
[[nodiscard]] std::pair<float, float> MinMaxF32(Device& d,
                                                std::span<const float> v);

}  // namespace mgpu::compute::ops

#endif  // MGPU_COMPUTE_OPS_H_
