// The compute device: owns a gles2::Context configured from a GPU profile,
// the VideoCore ALU model, the fullscreen two-triangle quad (challenge 2)
// and the pass-through vertex shader (challenge 1). Accumulates the
// operation/transfer/compile statistics the timing model consumes.
#ifndef MGPU_COMPUTE_DEVICE_H_
#define MGPU_COMPUTE_DEVICE_H_

#include <memory>
#include <string>

#include "gles2/context.h"
#include "vc4/alu.h"
#include "vc4/profiles.h"
#include "vc4/timing.h"

namespace mgpu::compute {

struct DeviceOptions {
  vc4::GpuProfile profile = vc4::VideoCoreIV();
  gles2::FbQuantization quantization =
      gles2::FbQuantization::kRoundNearest;
  // Shader execution engine for every kernel dispatch. The default is the
  // lane-batched VM: each kernel dispatch gathers covered fragments into
  // SoA batches and executes the lowered bytecode once per
  // instruction over all lanes, the way a VC4 QPU runs pixel groups through
  // one instruction stream. kBytecodeVm selects the scalar VM (one
  // dispatch-loop pass per fragment) and kTreeWalk the tree-walking
  // interpreter; all three produce identical output bytes and ALU/SFU/TMU
  // op counts, so either oracle can differentially check the batched path.
  gles2::ExecEngine exec_engine = gles2::ExecEngine::kBatchedVm;
  // Fragment-shading workers for the tiled rasterizer: 0 = one per hardware
  // thread (default), 1 = serial reference path. Results (output bytes and
  // ALU/SFU/TMU op counts) are identical for every value; see
  // gles2::ContextConfig::shader_threads.
  int shader_threads = 0;
  // SIMD level for the batched VM's stride-1 float fast paths: -1 picks the
  // MGPU_SIMD environment override if set, else the best level the host CPU
  // supports; 0 forces the portable scalar SoA kernels, 1 caps at SSE2 and
  // 2 at AVX2 (both clamped to what the host actually has). Every level
  // produces byte-identical framebuffers and op counts; see
  // gles2::ContextConfig::simd.
  int simd = -1;
  // Compiled-engine (kCompiled) availability: -1 honors the MGPU_JIT
  // environment override (exactly "0" disables) and otherwise probes for a
  // host C++ compiler; 0 forces the kBatchedVm fallback, >0 requires only
  // the toolchain probe. Mirrors `simd`; see gles2::ContextConfig::jit.
  int jit = -1;
  int max_texture_size = 4096;
};

class Device {
 public:
  explicit Device(const DeviceOptions& options = DeviceOptions{});

  [[nodiscard]] gles2::Context& gl() { return *ctx_; }
  [[nodiscard]] vc4::Vc4Alu& alu() { return alu_; }
  [[nodiscard]] const vc4::GpuProfile& profile() const {
    return options_.profile;
  }
  [[nodiscard]] int max_texture_size() const {
    return options_.max_texture_size;
  }

  // Queries the float capability the paper's §IV-E prescribes
  // (glGetShaderPrecisionFormat): mantissa bits of highp float in the
  // fragment processor (0 when unsupported, e.g. Mali-400).
  [[nodiscard]] int FragmentHighpMantissaBits();

  // Vertex array of the screen-covering quad as two triangles.
  [[nodiscard]] const float* quad_vertices() const;
  [[nodiscard]] int quad_vertex_count() const { return 6; }

  // --- statistics for the timing model ---
  [[nodiscard]] vc4::GpuWork& work() { return work_; }
  // Returns the accumulated work and resets the accumulator (also resets the
  // ALU counters so successive measurements are independent).
  vc4::GpuWork ConsumeWork();
  // Folds the ALU counter delta since the last sync into work().
  void SyncShaderOps();

 private:
  DeviceOptions options_;
  vc4::Vc4Alu alu_;
  std::unique_ptr<gles2::Context> ctx_;
  vc4::GpuWork work_;
  glsl::OpCounts last_ops_;
};

}  // namespace mgpu::compute

#endif  // MGPU_COMPUTE_DEVICE_H_
