#include "compute/buffer.h"

#include <cassert>
#include <stdexcept>

#include "common/strings.h"

namespace mgpu::compute {

using gles2::GLuint;

PackedBuffer::PackedBuffer(Device& device, ElemType type, std::size_t n)
    : device_(device), type_(type), n_(n) {
  const int per_texel = ElemsPerTexel(type);
  const std::size_t texels =
      (n + static_cast<std::size_t>(per_texel) - 1) / per_texel;
  const int max = device_.max_texture_size();
  // Challenge 3: 1D arrays must live in 2D textures; choose a tight layout.
  tex_w_ = static_cast<int>(texels < static_cast<std::size_t>(max)
                                ? (texels == 0 ? 1 : texels)
                                : static_cast<std::size_t>(max));
  tex_h_ = static_cast<int>((texels + tex_w_ - 1) / tex_w_);
  if (tex_h_ > max) {
    throw std::length_error("PackedBuffer: array exceeds texture capacity");
  }
  if (tex_h_ == 0) tex_h_ = 1;
  Init();
}

PackedBuffer::PackedBuffer(Device& device, ElemType type, int width,
                           int height)
    : device_(device), type_(type),
      n_(static_cast<std::size_t>(width) * height) {
  const int per_texel = ElemsPerTexel(type);
  if (width % per_texel != 0) {
    throw std::invalid_argument(
        "PackedBuffer: matrix width must be divisible by elements-per-texel");
  }
  tex_w_ = width / per_texel;
  tex_h_ = height;
  if (tex_w_ > device_.max_texture_size() ||
      tex_h_ > device_.max_texture_size()) {
    throw std::length_error("PackedBuffer: matrix exceeds texture capacity");
  }
  Init();
}

void PackedBuffer::Init() {
  gles2::Context& gl = device_.gl();
  gl.GenTextures(1, &tex_);
  gl.ActiveTexture(gles2::GL_TEXTURE0);
  gl.BindTexture(gles2::GL_TEXTURE_2D, tex_);
  gl.TexImage2D(gles2::GL_TEXTURE_2D, 0, gles2::GL_RGBA, tex_w_, tex_h_, 0,
                gles2::GL_RGBA, gles2::GL_UNSIGNED_BYTE, nullptr);
  // Challenge 4 discipline: NEAREST filtering + CLAMP_TO_EDGE so normalized
  // texel-center coordinates address elements exactly (and NPOT sizes stay
  // complete).
  gl.TexParameteri(gles2::GL_TEXTURE_2D, gles2::GL_TEXTURE_MIN_FILTER,
                   gles2::GL_NEAREST);
  gl.TexParameteri(gles2::GL_TEXTURE_2D, gles2::GL_TEXTURE_MAG_FILTER,
                   gles2::GL_NEAREST);
  gl.TexParameteri(gles2::GL_TEXTURE_2D, gles2::GL_TEXTURE_WRAP_S,
                   gles2::GL_CLAMP_TO_EDGE);
  gl.TexParameteri(gles2::GL_TEXTURE_2D, gles2::GL_TEXTURE_WRAP_T,
                   gles2::GL_CLAMP_TO_EDGE);
}

PackedBuffer::~PackedBuffer() {
  gles2::Context& gl = device_.gl();
  if (fbo_ != 0) gl.DeleteFramebuffers(1, &fbo_);
  if (tex_ != 0) gl.DeleteTextures(1, &tex_);
}

void PackedBuffer::UploadTexels(const std::vector<std::uint8_t>& texels,
                                ElemType t, std::uint64_t n) {
  if (t != type_) {
    throw std::invalid_argument(StrFormat(
        "PackedBuffer: upload type %s does not match buffer type %s",
        ElemTypeName(t), ElemTypeName(type_)));
  }
  std::vector<std::uint8_t> padded = texels;
  padded.resize(static_cast<std::size_t>(tex_w_) * tex_h_ * 4, 0);
  gles2::Context& gl = device_.gl();
  gl.ActiveTexture(gles2::GL_TEXTURE0);
  gl.BindTexture(gles2::GL_TEXTURE_2D, tex_);
  gl.TexSubImage2D(gles2::GL_TEXTURE_2D, 0, 0, 0, tex_w_, tex_h_,
                   gles2::GL_RGBA, gles2::GL_UNSIGNED_BYTE, padded.data());
  device_.work().bytes_uploaded += padded.size();
  device_.work().host_work += HostPackWork(type_, n);
}

void PackedBuffer::Upload(std::span<const std::uint8_t> v) {
  UploadTexels(PackU8(v), ElemType::kU8, v.size());
}
void PackedBuffer::Upload(std::span<const std::int8_t> v) {
  UploadTexels(PackI8(v), ElemType::kI8, v.size());
}
void PackedBuffer::Upload(std::span<const std::uint32_t> v) {
  UploadTexels(PackU32(v), ElemType::kU32, v.size());
}
void PackedBuffer::Upload(std::span<const std::int32_t> v) {
  UploadTexels(PackI32(v), ElemType::kI32, v.size());
}
void PackedBuffer::Upload(std::span<const float> v) {
  UploadTexels(PackF32(v), ElemType::kF32, v.size());
}

std::vector<std::uint8_t> PackedBuffer::ReadTexels() {
  gles2::Context& gl = device_.gl();
  if (fbo_ == 0) gl.GenFramebuffers(1, &fbo_);
  gl.BindFramebuffer(gles2::GL_FRAMEBUFFER, fbo_);
  gl.FramebufferTexture2D(gles2::GL_FRAMEBUFFER, gles2::GL_COLOR_ATTACHMENT0,
                          gles2::GL_TEXTURE_2D, tex_, 0);
  std::vector<std::uint8_t> texels(
      static_cast<std::size_t>(tex_w_) * tex_h_ * 4);
  gl.ReadPixels(0, 0, tex_w_, tex_h_, gles2::GL_RGBA,
                gles2::GL_UNSIGNED_BYTE, texels.data());
  gl.BindFramebuffer(gles2::GL_FRAMEBUFFER, 0);
  device_.work().bytes_readback += texels.size();
  return texels;
}

std::vector<std::uint8_t> PackedBuffer::DownloadRaw() { return ReadTexels(); }

void PackedBuffer::Download(std::span<std::uint8_t> out) {
  UnpackU8(ReadTexels(), out);
  device_.work().host_work += HostPackWork(type_, out.size());
}
void PackedBuffer::Download(std::span<std::int8_t> out) {
  UnpackI8(ReadTexels(), out);
  device_.work().host_work += HostPackWork(type_, out.size());
}
void PackedBuffer::Download(std::span<std::uint32_t> out) {
  UnpackU32(ReadTexels(), out);
  device_.work().host_work += HostPackWork(type_, out.size());
}
void PackedBuffer::Download(std::span<std::int32_t> out) {
  UnpackI32(ReadTexels(), out);
  device_.work().host_work += HostPackWork(type_, out.size());
}
void PackedBuffer::Download(std::span<float> out) {
  UnpackF32(ReadTexels(), out);
  device_.work().host_work += HostPackWork(type_, out.size());
}

}  // namespace mgpu::compute
