#include "compute/ops.h"

#include <algorithm>
#include <array>
#include <memory>
#include <vector>

#include "common/strings.h"
#include "compute/buffer.h"
#include "compute/kernel.h"

namespace mgpu::compute::ops {
namespace {

constexpr char kAdd32Body[] = R"(
float gp_kernel(vec2 gp_pos) {
  float i = gp_linear_index();
  return gp_fetch_u_a(i) + gp_fetch_u_b(i);
}
)";

// Byte adds wrap modulo 256 to match C's unsigned char arithmetic.
constexpr char kAddU8Body[] = R"(
vec4 gp_kernel(vec2 gp_pos) {
  float t = gp_linear_index();
  return mod(gp_fetch_u_a(t) + gp_fetch_u_b(t), 256.0);
}
)";

constexpr char kAddI8Body[] = R"(
vec4 gp_kernel(vec2 gp_pos) {
  float t = gp_linear_index();
  vec4 s = gp_fetch_u_a(t) + gp_fetch_u_b(t) + vec4(128.0);
  return mod(s + 256.0, 256.0) - vec4(128.0);
}
)";

template <typename T>
void RunBinary(Device& d, ElemType t, const char* body,
               std::span<const T> a, std::span<const T> b,
               std::span<T> out) {
  PackedBuffer ba(d, t, a.size());
  PackedBuffer bb(d, t, b.size());
  PackedBuffer bo(d, t, out.size());
  ba.Upload(a);
  bb.Upload(b);
  Kernel k(d, {.name = std::string("add_") + ElemTypeName(t),
               .inputs = {{"u_a", t}, {"u_b", t}},
               .output = t,
               .extra_decls = "",
               .body = body});
  k.Run(bo, {&ba, &bb});
  bo.Download(out);
}

}  // namespace

void AddF32(Device& d, std::span<const float> a, std::span<const float> b,
            std::span<float> out) {
  RunBinary(d, ElemType::kF32, kAdd32Body, a, b, out);
}

void AddI32(Device& d, std::span<const std::int32_t> a,
            std::span<const std::int32_t> b, std::span<std::int32_t> out) {
  RunBinary(d, ElemType::kI32, kAdd32Body, a, b, out);
}

void AddU32(Device& d, std::span<const std::uint32_t> a,
            std::span<const std::uint32_t> b, std::span<std::uint32_t> out) {
  RunBinary(d, ElemType::kU32, kAdd32Body, a, b, out);
}

void AddU8(Device& d, std::span<const std::uint8_t> a,
           std::span<const std::uint8_t> b, std::span<std::uint8_t> out) {
  RunBinary(d, ElemType::kU8, kAddU8Body, a, b, out);
}

void AddI8(Device& d, std::span<const std::int8_t> a,
           std::span<const std::int8_t> b, std::span<std::int8_t> out) {
  RunBinary(d, ElemType::kI8, kAddI8Body, a, b, out);
}

void SaxpyF32(Device& d, float alpha, std::span<const float> x,
              std::span<const float> y, std::span<float> out) {
  PackedBuffer bx(d, ElemType::kF32, x.size());
  PackedBuffer by(d, ElemType::kF32, y.size());
  PackedBuffer bo(d, ElemType::kF32, out.size());
  bx.Upload(x);
  by.Upload(y);
  Kernel k(d, {.name = "saxpy",
               .inputs = {{"u_x", ElemType::kF32}, {"u_y", ElemType::kF32}},
               .output = ElemType::kF32,
               .extra_decls = "uniform float u_alpha;",
               .body = R"(
float gp_kernel(vec2 gp_pos) {
  float i = gp_linear_index();
  return u_alpha * gp_fetch_u_x(i) + gp_fetch_u_y(i);
}
)"});
  k.SetUniform1f("u_alpha", alpha);
  k.Run(bo, {&bx, &by});
  bo.Download(out);
}

namespace {

template <typename T>
void GemmImpl(Device& d, ElemType t, int n, std::span<const T> a,
              std::span<const T> b, std::span<T> out) {
  PackedBuffer ba(d, t, n, n);
  PackedBuffer bb(d, t, n, n);
  PackedBuffer bo(d, t, n, n);
  ba.Upload(a);
  bb.Upload(b);
  Kernel k(d, {.name = std::string("gemm_") + ElemTypeName(t),
               .inputs = {{"u_a", t}, {"u_b", t}},
               .output = t,
               .extra_decls = StrFormat("#define GP_K %d", n),
               .body = R"(
float gp_kernel(vec2 gp_pos) {
  float acc = 0.0;
  for (int k = 0; k < GP_K; ++k) {
    acc += gp_fetch2_u_a(float(k), gp_pos.y) *
           gp_fetch2_u_b(gp_pos.x, float(k));
  }
  return acc;
}
)"});
  k.Run(bo, {&ba, &bb});
  bo.Download(out);
}

}  // namespace

void SgemmF32(Device& d, int n, std::span<const float> a,
              std::span<const float> b, std::span<float> out) {
  GemmImpl(d, ElemType::kF32, n, a, b, out);
}

void GemmI32(Device& d, int n, std::span<const std::int32_t> a,
             std::span<const std::int32_t> b, std::span<std::int32_t> out) {
  GemmImpl(d, ElemType::kI32, n, a, b, out);
}

void Conv3x3U8(Device& d, int w, int h, std::span<const std::uint8_t> img,
               std::span<const float> weights, std::span<std::uint8_t> out) {
  PackedBuffer bi(d, ElemType::kU8, w, h);
  PackedBuffer bo(d, ElemType::kU8, w, h);
  bi.Upload(img);
  // Each RGBA texel covers 4 horizontal pixels; the kernel gathers the
  // left/center/right texels of three rows and convolves each lane.
  Kernel k(d, {.name = "conv3x3_u8",
               .inputs = {{"u_img", ElemType::kU8}},
               .output = ElemType::kU8,
               .extra_decls = "uniform float u_w[9];",
               .body = R"(
vec4 gp_row_conv(vec4 l, vec4 c, vec4 r, float w0, float w1, float w2) {
  // Convolve the 4 lanes of the center texel with their row neighbors.
  vec4 left = vec4(l.a, c.r, c.g, c.b);
  vec4 right = vec4(c.g, c.b, c.a, r.r);
  return left * w0 + c * w1 + right * w2;
}

vec4 gp_kernel(vec2 gp_pos) {
  float x = gp_pos.x;
  vec4 acc = vec4(0.0);
  for (int dy = -1; dy <= 1; ++dy) {
    float y = gp_pos.y + float(dy);  // CLAMP_TO_EDGE handles row borders
    vec4 l = gp_fetch2_u_img(x - 1.0, y);
    vec4 c = gp_fetch2_u_img(x, y);
    vec4 r = gp_fetch2_u_img(x + 1.0, y);
    // Horizontal borders are at texel granularity: lane 0 of the first
    // texel must see pixel 0 as its left neighbor (clamp semantics), not
    // lane 3 of the wrapped texel; symmetrically on the right.
    if (x < 0.5) { l = vec4(c.r); }
    if (x > gp_size_u_img.x - 1.5) { r = vec4(c.a); }
    int row = dy + 1;
    acc += gp_row_conv(l, c, r, u_w[row * 3 + 0], u_w[row * 3 + 1],
                       u_w[row * 3 + 2]);
  }
  return clamp(acc, 0.0, 255.0);
}
)"});
  gles2::Context& gl = d.gl();
  (void)gl;
  // Upload the nine weights.
  for (int i = 0; i < 9; ++i) {
    k.SetUniform1f(StrFormat("u_w[%d]", i), weights[static_cast<std::size_t>(i)]);
  }
  k.Run(bo, {&bi});
  bo.Download(out);
}

float ReduceSumF32(Device& d, std::span<const float> v) {
  // Multi-pass 4:1 tree; intermediate buffers are padded to multiples of 4
  // so tail fetches read zeros, and the final 1-element buffer is the one
  // read back — the "careful kernel ordering" of challenge 7.
  auto padded4 = [](std::size_t n) { return (n + 3) / 4 * 4; };
  std::vector<float> host(v.begin(), v.end());
  host.resize(padded4(host.size()), 0.0f);

  auto src = std::make_unique<PackedBuffer>(d, ElemType::kF32, host.size());
  src->Upload(std::span<const float>(host));

  // The u_count guard zeroes the padding lanes of each level so they never
  // inject out-of-range fetches into the next level.
  Kernel k(d, {.name = "reduce4",
               .inputs = {{"u_src", ElemType::kF32}},
               .output = ElemType::kF32,
               .extra_decls = "uniform float u_count;",
               .body = R"(
float gp_kernel(vec2 gp_pos) {
  float j = gp_linear_index();
  if (j >= u_count) { return 0.0; }
  float i = j * 4.0;
  return gp_fetch_u_src(i) + gp_fetch_u_src(i + 1.0) +
         gp_fetch_u_src(i + 2.0) + gp_fetch_u_src(i + 3.0);
}
)"});

  std::size_t n = host.size();
  while (n > 1) {
    const std::size_t groups = (n + 3) / 4;
    const std::size_t next = std::max<std::size_t>(padded4(groups), 4);
    auto dst = std::make_unique<PackedBuffer>(d, ElemType::kF32, next);
    k.SetUniform1f("u_count", static_cast<float>(groups));
    k.Run(*dst, {src.get()});
    src = std::move(dst);
    n = groups;
  }
  float result = 0.0f;
  std::array<float, 4> tmp{};
  src->Download(std::span<float>(tmp.data(), std::min<std::size_t>(src->size(), 4)));
  result = tmp[0];
  return result;
}

std::pair<float, float> MinMaxF32(Device& d, std::span<const float> v) {
  // Challenge 8: the kernel conceptually has two outputs (min, max); ES 2.0
  // allows one per program, so MultiKernel splits it into two programs.
  auto padded4 = [](std::size_t n) { return (n + 3) / 4 * 4; };
  std::vector<float> host(v.begin(), v.end());
  const float first = host.empty() ? 0.0f : host[0];
  host.resize(padded4(std::max<std::size_t>(host.size(), 1)), first);

  PackedBuffer src(d, ElemType::kF32, host.size());
  src.Upload(std::span<const float>(host));
  const std::size_t groups = host.size() / 4;
  PackedBuffer mins(d, ElemType::kF32, groups);
  PackedBuffer maxs(d, ElemType::kF32, groups);

  MultiKernel mk(d, {.name = "minmax",
                     .inputs = {{"u_src", ElemType::kF32}},
                     .outputs = {ElemType::kF32, ElemType::kF32},
                     .extra_decls = "",
                     .body = R"(
void gp_kernel_multi(vec2 gp_pos, out float o0, out float o1) {
  float i = gp_linear_index() * 4.0;
  float a = gp_fetch_u_src(i);
  float b = gp_fetch_u_src(i + 1.0);
  float c = gp_fetch_u_src(i + 2.0);
  float e = gp_fetch_u_src(i + 3.0);
  o0 = min(min(a, b), min(c, e));
  o1 = max(max(a, b), max(c, e));
}
)"});
  mk.Run({&mins, &maxs}, {&src});
  std::vector<float> hmin(groups), hmax(groups);
  mins.Download(std::span<float>(hmin));
  maxs.Download(std::span<float>(hmax));
  float mn = hmin[0], mx = hmax[0];
  for (std::size_t i = 1; i < groups; ++i) {
    mn = std::min(mn, hmin[i]);
    mx = std::max(mx, hmax[i]);
  }
  return {mn, mx};
}

}  // namespace mgpu::compute::ops
