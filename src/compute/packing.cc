#include "compute/packing.h"

#include <cstring>

#include "common/bits.h"

namespace mgpu::compute {

const char* ElemTypeName(ElemType t) {
  switch (t) {
    case ElemType::kU8: return "unsigned char";
    case ElemType::kI8: return "signed char";
    case ElemType::kU32: return "unsigned int";
    case ElemType::kI32: return "int";
    case ElemType::kF32: return "float";
  }
  return "?";
}

int ElemBytes(ElemType t) {
  return (t == ElemType::kU8 || t == ElemType::kI8) ? 1 : 4;
}

int ElemsPerTexel(ElemType t) {
  return (t == ElemType::kU8 || t == ElemType::kI8) ? 4 : 1;
}

std::uint32_t RotateFloatBitsForGpu(std::uint32_t b) {
  const std::uint32_t sign = b >> 31;
  const std::uint32_t exponent = (b >> 23) & 0xffu;
  const std::uint32_t mantissa = b & 0x7fffffu;
  return (exponent << 24) | (sign << 23) | mantissa;
}

std::uint32_t RotateFloatBitsFromGpu(std::uint32_t g) {
  const std::uint32_t exponent = g >> 24;
  const std::uint32_t sign = (g >> 23) & 1u;
  const std::uint32_t mantissa = g & 0x7fffffu;
  return (sign << 31) | (exponent << 23) | mantissa;
}

namespace {

// Little-endian store of a 32-bit word into 4 texel channels.
void Store32(std::vector<std::uint8_t>& out, std::uint32_t w) {
  out.push_back(static_cast<std::uint8_t>(w & 0xffu));
  out.push_back(static_cast<std::uint8_t>((w >> 8) & 0xffu));
  out.push_back(static_cast<std::uint8_t>((w >> 16) & 0xffu));
  out.push_back(static_cast<std::uint8_t>((w >> 24) & 0xffu));
}

std::uint32_t Load32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::vector<std::uint8_t> PackU8(std::span<const std::uint8_t> v) {
  std::vector<std::uint8_t> out(v.begin(), v.end());
  out.resize((out.size() + 3) / 4 * 4, 0);
  return out;
}

std::vector<std::uint8_t> PackI8(std::span<const std::int8_t> v) {
  // Unmodified two's complement: -1 is stored as 0xFF.
  std::vector<std::uint8_t> out(v.size());
  std::memcpy(out.data(), v.data(), v.size());
  out.resize((out.size() + 3) / 4 * 4, 0);
  return out;
}

std::vector<std::uint8_t> PackU32(std::span<const std::uint32_t> v) {
  std::vector<std::uint8_t> out;
  out.reserve(v.size() * 4);
  for (const std::uint32_t w : v) Store32(out, w);
  return out;
}

std::vector<std::uint8_t> PackI32(std::span<const std::int32_t> v) {
  std::vector<std::uint8_t> out;
  out.reserve(v.size() * 4);
  for (const std::int32_t w : v) Store32(out, static_cast<std::uint32_t>(w));
  return out;
}

std::vector<std::uint8_t> PackF32(std::span<const float> v) {
  std::vector<std::uint8_t> out;
  out.reserve(v.size() * 4);
  for (const float f : v) {
    Store32(out, RotateFloatBitsForGpu(mgpu::FloatToBits(f)));
  }
  return out;
}

void UnpackU8(std::span<const std::uint8_t> texels,
              std::span<std::uint8_t> out) {
  std::memcpy(out.data(), texels.data(), out.size());
}

void UnpackI8(std::span<const std::uint8_t> texels,
              std::span<std::int8_t> out) {
  std::memcpy(out.data(), texels.data(), out.size());
}

void UnpackU32(std::span<const std::uint8_t> texels,
               std::span<std::uint32_t> out) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = Load32(texels.data() + i * 4);
  }
}

void UnpackI32(std::span<const std::uint8_t> texels,
               std::span<std::int32_t> out) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::int32_t>(Load32(texels.data() + i * 4));
  }
}

void UnpackF32(std::span<const std::uint8_t> texels, std::span<float> out) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = mgpu::BitsToFloat(RotateFloatBitsFromGpu(Load32(texels.data() + i * 4)));
  }
}

vc4::CpuWork HostPackWork(ElemType t, std::uint64_t n) {
  // Integer formats keep their memory layout (paper §IV-A: "the
  // transformation is applied in its entirety by the shader"), so the
  // upload/readback copy — already charged to the transfer bandwidth term —
  // is all there is: zero marginal CPU work.
  //
  // The float path's Fig. 2 bit rotation (§V: "partial bit re-arrangements
  // ... on the CPU") is fused into the transfer copy: on the ARM1176 every
  // streaming load leaves a 3-cycle load-use window and the 4 rotation ALU
  // ops fit entirely inside it, so the marginal wall-clock cost is zero at
  // this model's granularity. The asymmetry the paper attributes to floats
  // therefore shows up in the SHADER term (exp2/log2 SFU traffic), which is
  // measured, not here.
  (void)t;
  (void)n;
  return vc4::CpuWork{};
}

}  // namespace mgpu::compute
