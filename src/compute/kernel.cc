#include "compute/kernel.h"

#include <set>
#include <stdexcept>

#include "common/strings.h"
#include "compute/shaderlib.h"

namespace mgpu::compute {

using gles2::GLint;
using gles2::GLuint;

namespace {

std::string BuildFragmentSource(const Kernel::Options& opt) {
  std::string src = KernelPreamble();
  // Unpack functions for every distinct input type plus the output type.
  std::set<ElemType> types;
  for (const auto& [name, t] : opt.inputs) types.insert(t);
  for (const ElemType t : types) src += UnpackFunction(t);
  src += PackFunction(opt.output);
  for (const auto& [name, t] : opt.inputs) src += FetchFunctions(name, t);
  if (!opt.extra_decls.empty()) src += opt.extra_decls + "\n";
  src += opt.body;
  const bool byte_out =
      opt.output == ElemType::kU8 || opt.output == ElemType::kI8;
  src += StrFormat(
      "\nvoid main() {\n"
      "  gl_FragColor = %s(gp_kernel(gp_pos_xy()));\n"
      "}\n",
      PackName(opt.output).c_str());
  (void)byte_out;  // both contracts pack through a vec4-returning function
  return src;
}

}  // namespace

Kernel::Kernel(Device& device, Options options)
    : device_(device), options_(std::move(options)) {
  gles2::Context& gl = device_.gl();
  fragment_source_ = BuildFragmentSource(options_);

  vs_ = gl.CreateShader(gles2::GL_VERTEX_SHADER);
  gl.ShaderSource(vs_, PassthroughVertexShader());
  gl.CompileShader(vs_);
  GLint ok = gles2::GL_FALSE;
  gl.GetShaderiv(vs_, gles2::GL_COMPILE_STATUS, &ok);
  if (ok != gles2::GL_TRUE) {
    throw std::runtime_error("vertex shader compile failed:\n" +
                             gl.GetShaderInfoLog(vs_));
  }

  fs_ = gl.CreateShader(gles2::GL_FRAGMENT_SHADER);
  gl.ShaderSource(fs_, fragment_source_);
  gl.CompileShader(fs_);
  gl.GetShaderiv(fs_, gles2::GL_COMPILE_STATUS, &ok);
  if (ok != gles2::GL_TRUE) {
    throw std::runtime_error(StrFormat(
        "kernel '%s' fragment shader compile failed:\n%s\n--- source ---\n%s",
        options_.name.c_str(), gl.GetShaderInfoLog(fs_).c_str(),
        fragment_source_.c_str()));
  }

  program_ = gl.CreateProgram();
  gl.AttachShader(program_, vs_);
  gl.AttachShader(program_, fs_);
  gl.LinkProgram(program_);
  gl.GetProgramiv(program_, gles2::GL_LINK_STATUS, &ok);
  if (ok != gles2::GL_TRUE) {
    throw std::runtime_error(StrFormat("kernel '%s' link failed:\n%s",
                                       options_.name.c_str(),
                                       gl.GetProgramInfoLog(program_).c_str()));
  }
  pos_attrib_ = gl.GetAttribLocation(program_, "gp_pos");
  // Two programs' compile cost (vertex + fragment) is modeled as one
  // program-compile unit, matching how the paper counts "kernel
  // compilations".
  device_.work().program_compiles += 1;
}

Kernel::~Kernel() {
  gles2::Context& gl = device_.gl();
  if (fbo_ != 0) gl.DeleteFramebuffers(1, &fbo_);
  if (program_ != 0) gl.DeleteProgram(program_);
  if (vs_ != 0) gl.DeleteShader(vs_);
  if (fs_ != 0) gl.DeleteShader(fs_);
}

void Kernel::SetUniform1f(const std::string& name, float v) {
  gles2::Context& gl = device_.gl();
  gl.UseProgram(program_);
  gl.Uniform1f(gl.GetUniformLocation(program_, name), v);
}

void Kernel::SetUniform2f(const std::string& name, float x, float y) {
  gles2::Context& gl = device_.gl();
  gl.UseProgram(program_);
  gl.Uniform2f(gl.GetUniformLocation(program_, name), x, y);
}

void Kernel::SetUniform1i(const std::string& name, int v) {
  gles2::Context& gl = device_.gl();
  gl.UseProgram(program_);
  gl.Uniform1i(gl.GetUniformLocation(program_, name), v);
}

void Kernel::Run(PackedBuffer& out, std::span<PackedBuffer* const> inputs) {
  if (inputs.size() != options_.inputs.size()) {
    throw std::invalid_argument(StrFormat(
        "kernel '%s' expects %zu inputs, got %zu", options_.name.c_str(),
        options_.inputs.size(), inputs.size()));
  }
  if (out.type() != options_.output) {
    throw std::invalid_argument(StrFormat(
        "kernel '%s' output type mismatch (buffer is %s, kernel produces %s)",
        options_.name.c_str(), ElemTypeName(out.type()),
        ElemTypeName(options_.output)));
  }
  gles2::Context& gl = device_.gl();
  gl.UseProgram(program_);

  // Render-to-texture (challenge 7: results land where they can be read).
  if (fbo_ == 0) gl.GenFramebuffers(1, &fbo_);
  gl.BindFramebuffer(gles2::GL_FRAMEBUFFER, fbo_);
  gl.FramebufferTexture2D(gles2::GL_FRAMEBUFFER, gles2::GL_COLOR_ATTACHMENT0,
                          gles2::GL_TEXTURE_2D, out.texture(), 0);
  gl.Viewport(0, 0, out.tex_width(), out.tex_height());

  // Bind inputs.
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto& [name, type] = options_.inputs[i];
    if (inputs[i]->type() != type) {
      throw std::invalid_argument(StrFormat(
          "kernel '%s' input '%s' type mismatch", options_.name.c_str(),
          name.c_str()));
    }
    gl.ActiveTexture(gles2::GL_TEXTURE0 + static_cast<GLuint>(i));
    gl.BindTexture(gles2::GL_TEXTURE_2D, inputs[i]->texture());
    gl.Uniform1i(gl.GetUniformLocation(program_, name),
                 static_cast<GLint>(i));
    gl.Uniform2f(gl.GetUniformLocation(program_, "gp_size_" + name),
                 static_cast<float>(inputs[i]->tex_width()),
                 static_cast<float>(inputs[i]->tex_height()));
  }
  gl.Uniform2f(gl.GetUniformLocation(program_, "gp_out_size"),
               static_cast<float>(out.tex_width()),
               static_cast<float>(out.tex_height()));

  // Challenge 2: the screen-covering quad as two triangles. The draw is
  // the kernel loop: under the default batched engine the rasterizer packs
  // the quad's fragments into 16-lane SoA batches and each batch makes one
  // pass through the kernel's instruction stream (VmExec::RunBatch), so
  // per-element interpreter overhead is amortized across lanes exactly as
  // QPU lockstep amortizes instruction issue across pixels.
  gl.EnableVertexAttribArray(static_cast<GLuint>(pos_attrib_));
  gl.VertexAttribPointer(static_cast<GLuint>(pos_attrib_), 2,
                         gles2::GL_FLOAT, gles2::GL_FALSE, 0,
                         device_.quad_vertices());
  gl.DrawArrays(gles2::GL_TRIANGLES, 0, device_.quad_vertex_count());
  gl.BindFramebuffer(gles2::GL_FRAMEBUFFER, 0);

  const gles2::GLenum err = gl.GetError();
  if (err != gles2::GL_NO_ERROR) {
    // Fold the robustness classification into the failure so callers see
    // who to blame without re-querying: GUILTY means this kernel's own
    // shader trapped (or tripped the MGPU_DRAW_BUDGET watchdog); INNOCENT
    // means a pipeline resource failed. The query observes-and-clears, so
    // the context is usable again if the caller catches and continues.
    const gles2::GLenum reset = gl.GetGraphicsResetStatus();
    const char* blame = "";
    if (reset == gles2::GL_GUILTY_CONTEXT_RESET) {
      blame = " [guilty: kernel shader]";
    } else if (reset == gles2::GL_INNOCENT_CONTEXT_RESET) {
      blame = " [innocent: pipeline resource]";
    }
    throw std::runtime_error(StrFormat(
        "kernel '%s' dispatch failed: GL error 0x%04x%s%s%s",
        options_.name.c_str(), err, blame,
        gl.last_draw_error().empty() ? "" : "\nshader runtime: ",
        gl.last_draw_error().c_str()));
  }

  device_.work().fragments +=
      static_cast<std::uint64_t>(out.tex_width()) * out.tex_height();
  device_.work().vertices += static_cast<std::uint64_t>(
      device_.quad_vertex_count());
  device_.work().draw_calls += 1;
  device_.SyncShaderOps();
}

MultiKernel::MultiKernel(Device& device, Options options) {
  if (options.outputs.empty()) {
    throw std::invalid_argument("MultiKernel requires at least one output");
  }
  const int m = static_cast<int>(options.outputs.size());
  for (int k = 0; k < m; ++k) {
    const ElemType ot = options.outputs[static_cast<std::size_t>(k)];
    if (ot == ElemType::kU8 || ot == ElemType::kI8) {
      throw std::invalid_argument(
          "MultiKernel outputs must be 32-bit formats (documented subset)");
    }
    // Wrap the user's multi-output body: program k evaluates everything and
    // keeps only output k (paper §III-8: one shader per output).
    std::string decls, args;
    for (int j = 0; j < m; ++j) {
      decls += StrFormat("  float o%d;\n", j);
      args += StrFormat("%so%d", j == 0 ? "" : ", ", j);
    }
    Kernel::Options ko;
    ko.name = StrFormat("%s.out%d", options.name.c_str(), k);
    ko.inputs = options.inputs;
    ko.output = ot;
    ko.extra_decls = options.extra_decls;
    ko.body = options.body +
              StrFormat("\nfloat gp_kernel(vec2 gp_pos) {\n%s"
                        "  gp_kernel_multi(gp_pos, %s);\n"
                        "  return o%d;\n}\n",
                        decls.c_str(), args.c_str(), k);
    kernels_.push_back(std::make_unique<Kernel>(device, std::move(ko)));
  }
}

void MultiKernel::Run(std::span<PackedBuffer* const> outs,
                      std::span<PackedBuffer* const> inputs) {
  if (outs.size() != kernels_.size()) {
    throw std::invalid_argument("MultiKernel: wrong number of outputs");
  }
  for (std::size_t k = 0; k < kernels_.size(); ++k) {
    kernels_[k]->Run(*outs[k], inputs);
  }
}

}  // namespace mgpu::compute
