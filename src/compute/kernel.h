// Compute kernels over the graphics pipeline (paper §II-A, §III): the user
// supplies a GLSL ES function `gp_kernel` operating on one output element;
// the framework wraps it with the pass-through vertex shader, the numeric
// pack/unpack library, input fetch helpers and the fullscreen-quad dispatch,
// and renders the result into a PackedBuffer texture.
//
// Kernel body contract:
//   * 32-bit outputs (f32/u32/i32):  `float gp_kernel(vec2 gp_pos)`
//   * byte outputs (u8/i8):          `vec4 gp_kernel(vec2 gp_pos)`
//     (byte kernels are 4-wide: one RGBA texel = 4 consecutive elements)
// Available helpers: gp_fetch_<input>(index), gp_fetch2_<input>(x, y),
// gp_linear_index(), gp_coord(), gp_out_size, and the gp_(un)pack_* library.
#ifndef MGPU_COMPUTE_KERNEL_H_
#define MGPU_COMPUTE_KERNEL_H_

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "compute/buffer.h"
#include "compute/device.h"

namespace mgpu::compute {

class Kernel {
 public:
  struct Options {
    std::string name = "kernel";
    std::vector<std::pair<std::string, ElemType>> inputs;
    ElemType output = ElemType::kF32;
    std::string extra_decls;  // extra uniforms / #defines / helpers
    std::string body;         // defines gp_kernel
  };

  // Compiles and links the program; throws std::runtime_error with the
  // driver info log on failure.
  Kernel(Device& device, Options options);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  void SetUniform1f(const std::string& name, float v);
  void SetUniform2f(const std::string& name, float x, float y);
  void SetUniform1i(const std::string& name, int v);

  // Dispatches one output element per texel of `out`. `inputs` must match
  // the declared input list in order and type.
  void Run(PackedBuffer& out, std::span<PackedBuffer* const> inputs);
  void Run(PackedBuffer& out, std::initializer_list<PackedBuffer*> inputs) {
    Run(out, std::span<PackedBuffer* const>(inputs.begin(), inputs.size()));
  }

  [[nodiscard]] const std::string& fragment_source() const {
    return fragment_source_;
  }

 private:
  Device& device_;
  Options options_;
  std::string fragment_source_;
  gles2::GLuint program_ = 0;
  gles2::GLuint vs_ = 0;
  gles2::GLuint fs_ = 0;
  gles2::GLuint fbo_ = 0;
  gles2::GLint pos_attrib_ = -1;
};

// Challenge 8: a kernel with M outputs must be split into M programs, one
// per output, because a fragment shader writes a single color. The body
// defines `void gp_kernel_multi(vec2 gp_pos, out float o0, ..., out float
// o<M-1>)`; Run executes M passes (recomputing the body each time, the cost
// the ablation benchmark quantifies). Outputs must be 32-bit formats.
class MultiKernel {
 public:
  struct Options {
    std::string name = "multikernel";
    std::vector<std::pair<std::string, ElemType>> inputs;
    std::vector<ElemType> outputs;
    std::string extra_decls;
    std::string body;  // defines gp_kernel_multi
  };

  MultiKernel(Device& device, Options options);

  void Run(std::span<PackedBuffer* const> outs,
           std::span<PackedBuffer* const> inputs);
  void Run(std::initializer_list<PackedBuffer*> outs,
           std::initializer_list<PackedBuffer*> inputs) {
    Run(std::span<PackedBuffer* const>(outs.begin(), outs.size()),
        std::span<PackedBuffer* const>(inputs.begin(), inputs.size()));
  }

  [[nodiscard]] int output_count() const {
    return static_cast<int>(kernels_.size());
  }

 private:
  std::vector<std::unique_ptr<Kernel>> kernels_;
};

}  // namespace mgpu::compute

#endif  // MGPU_COMPUTE_KERNEL_H_
