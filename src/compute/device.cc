#include "compute/device.h"

namespace mgpu::compute {
namespace {

constexpr float kQuad[12] = {
    -1.0f, -1.0f, 1.0f, -1.0f, 1.0f, 1.0f,
    -1.0f, -1.0f, 1.0f, 1.0f, -1.0f, 1.0f,
};

}  // namespace

Device::Device(const DeviceOptions& options)
    : options_(options), alu_(options.profile) {
  gles2::ContextConfig cfg;
  cfg.width = 1;  // the default framebuffer is unused; kernels render to FBOs
  cfg.height = 1;
  cfg.limits = options_.profile.limits;
  cfg.quantization = options_.quantization;
  cfg.exec_engine = options_.exec_engine;
  cfg.shader_threads = options_.shader_threads;
  cfg.simd = options_.simd;
  cfg.jit = options_.jit;
  cfg.max_texture_size = options_.max_texture_size;
  cfg.renderer_name = "mgpu software GLES2 (" + options_.profile.name + ")";
  ctx_ = std::make_unique<gles2::Context>(cfg, &alu_);
}

int Device::FragmentHighpMantissaBits() {
  gles2::GLint range[2] = {0, 0};
  gles2::GLint precision = 0;
  ctx_->GetShaderPrecisionFormat(gles2::GL_FRAGMENT_SHADER,
                                 gles2::GL_HIGH_FLOAT, range, &precision);
  return precision;
}

const float* Device::quad_vertices() const { return kQuad; }

void Device::SyncShaderOps() {
  const glsl::OpCounts now = alu_.counts();
  work_.shader_ops.alu += now.alu - last_ops_.alu;
  work_.shader_ops.sfu += now.sfu - last_ops_.sfu;
  work_.shader_ops.sfu_trans += now.sfu_trans - last_ops_.sfu_trans;
  work_.shader_ops.tmu += now.tmu - last_ops_.tmu;
  work_.shader_ops.tmu_miss += now.tmu_miss - last_ops_.tmu_miss;
  last_ops_ = now;
}

vc4::GpuWork Device::ConsumeWork() {
  SyncShaderOps();
  vc4::GpuWork out = work_;
  work_ = vc4::GpuWork{};
  return out;
}

}  // namespace mgpu::compute
