// GLSL ES 1.00 source generators implementing the paper's §IV numeric
// transformations inside the shader: byte reconstruction (M, Eq. 4), signed
// bytes (M2), integer byte-significance sums (Eq. 6/7) and the floating
// point (de)composition (§IV-E), plus the 1D index <-> 2D normalized
// coordinate helpers (challenges 3/4).
//
// Two pack conventions are provided for the framebuffer write (inverse
// transforms): the robust form (b + 0.25) / 255, which survives both the
// floor conversion of the paper's Eq. (2) and the round-to-nearest
// conversion of real drivers, and a paper-literal delta form used by tests
// to demonstrate equivalence (see DESIGN.md errata).
#ifndef MGPU_COMPUTE_SHADERLIB_H_
#define MGPU_COMPUTE_SHADERLIB_H_

#include <string>

#include "compute/packing.h"

namespace mgpu::compute {

// The pass-through vertex shader of the paper's challenge 1: its only job is
// forwarding the varying to the fragment stage — no projection needed since
// the camera looks straight at the screen-covering quad.
[[nodiscard]] std::string PassthroughVertexShader();

// Common preamble for generated fragment kernels: precision statement,
// varying, and the byte/coordinate helper functions.
[[nodiscard]] std::string KernelPreamble();

// gp_unpack_<type>(vec4) and gp_pack_<type>(...) function definitions.
// Byte types expose vec4-wide variants (gp_unpack_u8 : vec4 -> vec4 with
// values in [0,255]; gp_unpack_i8 -> [-128,127]).
[[nodiscard]] std::string UnpackFunction(ElemType t);
[[nodiscard]] std::string PackFunction(ElemType t);

// Names of the generated functions, e.g. "gp_unpack_f32".
[[nodiscard]] std::string UnpackName(ElemType t);
[[nodiscard]] std::string PackName(ElemType t);

// Paper-literal byte reconstruction using the delta correction of Eq. (3)-
// (5): gp_unpack_u8_delta / gp_pack_u8_delta. Proven equivalent to the
// robust forms by property tests.
[[nodiscard]] std::string DeltaByteFunctions();

// Fetch helper for a named sampler input: defines
//   float gp_fetch_<name>(float index)        (32-bit formats)
//   vec4  gp_fetch_<name>(float texel_index)  (byte formats)
// and the 2D variant gp_fetch2_<name>(float x, float y).
[[nodiscard]] std::string FetchFunctions(const std::string& name, ElemType t);

}  // namespace mgpu::compute

#endif  // MGPU_COMPUTE_SHADERLIB_H_
