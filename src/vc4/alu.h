// The VideoCore-class ALU model: IEEE fp32 add/mul pipes, denormal flush,
// and a special function unit whose EXP2/LOG2 deliver only ~16 good bits —
// the mechanistic source of the paper's float-precision result (§V).
// RECIP/RECIPSQRT are modeled near-exact because the shader compiler emits a
// Newton-Raphson refinement step for them (as the real VC4 driver does),
// which is also why the paper's *integer* path stays exact: its byte
// decomposition uses division but never exp2/log2.
#ifndef MGPU_VC4_ALU_H_
#define MGPU_VC4_ALU_H_

#include "glsl/alu.h"
#include "vc4/profiles.h"

namespace mgpu::vc4 {

class Vc4Alu final : public glsl::AluModel {
 public:
  explicit Vc4Alu(const GpuProfile& profile) : profile_(profile) {
    // Round() is the identity exactly when the profile keeps full fp32
    // mantissas and does not flush denormals (e.g. the IeeeExact profile).
    SetRoundIdentity(!profile_.flush_denormals &&
                     profile_.alu_mantissa_bits >= 23);
  }

  float Exp2(float x) override;
  float Log2(float x) override;
  float Recip(float x) override;
  float RecipSqrt(float x) override;
  float Round(float x) override;

  // Precision behaviour is pure (a deterministic function of the inputs and
  // the profile), so a fork with fresh counters is exactly equivalent — and
  // a cached fork re-armed with ResetCounts() is equivalent to a fresh one,
  // which is what lets the gles2 shade-state cache reuse shards across
  // draws instead of re-forking (see AluModel::Fork's reuse contract).
  [[nodiscard]] std::unique_ptr<glsl::AluModel> Fork() const override {
    return std::make_unique<Vc4Alu>(profile_);
  }

  [[nodiscard]] const GpuProfile& profile() const { return profile_; }

 private:
  // Deterministic signed perturbation with |eta| <= 2^-sfu_error_bits,
  // derived from the input bit pattern (so repeated evaluation of the same
  // value reproduces the same hardware error, as on silicon).
  [[nodiscard]] float SfuPerturb(float exact, float input) const;

  GpuProfile profile_;
};

}  // namespace mgpu::vc4

#endif  // MGPU_VC4_ALU_H_
