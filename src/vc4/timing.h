// Timing model replacing the paper's wall-clock measurements on the
// Raspberry Pi. GPU time is derived from *measured* operation counts (the
// interpreter's AluModel counters), CPU time from analytic per-kernel
// operation counts and an ARM1176 cost table. Machine constants are
// calibrated once against the paper's published speedups (the paper reports
// no raw times); the calibration is documented in EXPERIMENTS.md.
#ifndef MGPU_VC4_TIMING_H_
#define MGPU_VC4_TIMING_H_

#include <cstdint>
#include <string>

#include "glsl/alu.h"
#include "vc4/profiles.h"

namespace mgpu::vc4 {

// ARM1176JZF-S class CPU (the Raspberry Pi's CPU): single-issue in-order
// core with a non-pipelined-in-practice VFP11 FPU and modest cache.
// Per-op costs model the *benchmark baselines the paper measures against*:
// plain scalar C loops on the Pi, where streaming loads miss the 16 KB L1
// with no prefetcher (the Pi 1's notorious ~300 MB/s effective stream rate)
// and the loop body pays heavy per-iteration overhead (index arithmetic,
// bounds, stack traffic of unoptimized builds). The constants were
// calibrated once against the paper's four published speedups
// (EXPERIMENTS.md documents the fit).
struct CpuModel {
  std::string name = "ARM1176JZF-S @ 700 MHz";
  double clock_hz = 700e6;
  double int_alu_cycles = 1.0;
  double int_mul_cycles = 2.0;
  double fp_add_cycles = 3.0;   // VFP11 FADDS/FMULS effective throughput
  double fp_mul_cycles = 3.0;   // with compiler scheduling in the loop body
  double fp_div_cycles = 19.0;  // VFP11 FDIVS
  double load_cycles = 16.0;    // streaming miss-dominated
  double store_cycles = 8.0;
  double loop_overhead_cycles = 40.0;  // unoptimized loop body overhead
};

[[nodiscard]] CpuModel Arm1176();

// Operation counts of a CPU kernel (analytic formulas live in cpuref).
struct CpuWork {
  std::uint64_t int_ops = 0;
  std::uint64_t int_muls = 0;
  std::uint64_t fp_adds = 0;
  std::uint64_t fp_muls = 0;
  std::uint64_t fp_divs = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t iterations = 0;

  CpuWork& operator+=(const CpuWork& o);
};

[[nodiscard]] double CpuSeconds(const CpuModel& cpu, const CpuWork& work);

// One GPU dispatch (or a whole multi-kernel application).
struct GpuWork {
  std::uint64_t fragments = 0;
  std::uint64_t vertices = 0;
  glsl::OpCounts shader_ops;  // totals across all invocations (measured)
  std::uint64_t bytes_uploaded = 0;
  std::uint64_t bytes_readback = 0;
  int program_compiles = 0;
  int draw_calls = 0;
  CpuWork host_work;  // CPU-side pack/unpack (e.g. the float bit rotation)

  GpuWork& operator+=(const GpuWork& o);
};

struct GpuTimeBreakdown {
  double shader = 0.0;
  double upload = 0.0;
  double readback = 0.0;
  double compile = 0.0;
  double api_overhead = 0.0;
  double host = 0.0;

  [[nodiscard]] double total() const {
    return shader + upload + readback + compile + api_overhead + host;
  }
};

// Wall time of the GPU path "including time spent in data transfers and
// kernel compilations" (paper §V).
[[nodiscard]] GpuTimeBreakdown GpuSeconds(const GpuProfile& gpu,
                                          const CpuModel& cpu,
                                          const GpuWork& work);

// Peak arithmetic throughput of a profile in FLOP/s (sanity: VideoCore IV
// must report the paper's 24 GFLOPS).
[[nodiscard]] double PeakFlops(const GpuProfile& gpu);

}  // namespace mgpu::vc4

#endif  // MGPU_VC4_TIMING_H_
