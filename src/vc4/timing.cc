#include "vc4/timing.h"

namespace mgpu::vc4 {

CpuModel Arm1176() { return CpuModel{}; }

CpuWork& CpuWork::operator+=(const CpuWork& o) {
  int_ops += o.int_ops;
  int_muls += o.int_muls;
  fp_adds += o.fp_adds;
  fp_muls += o.fp_muls;
  fp_divs += o.fp_divs;
  loads += o.loads;
  stores += o.stores;
  iterations += o.iterations;
  return *this;
}

GpuWork& GpuWork::operator+=(const GpuWork& o) {
  fragments += o.fragments;
  vertices += o.vertices;
  shader_ops += o.shader_ops;
  bytes_uploaded += o.bytes_uploaded;
  bytes_readback += o.bytes_readback;
  program_compiles += o.program_compiles;
  draw_calls += o.draw_calls;
  host_work += o.host_work;
  return *this;
}

double CpuSeconds(const CpuModel& cpu, const CpuWork& w) {
  const double cycles =
      static_cast<double>(w.int_ops) * cpu.int_alu_cycles +
      static_cast<double>(w.int_muls) * cpu.int_mul_cycles +
      static_cast<double>(w.fp_adds) * cpu.fp_add_cycles +
      static_cast<double>(w.fp_muls) * cpu.fp_mul_cycles +
      static_cast<double>(w.fp_divs) * cpu.fp_div_cycles +
      static_cast<double>(w.loads) * cpu.load_cycles +
      static_cast<double>(w.stores) * cpu.store_cycles +
      static_cast<double>(w.iterations) * cpu.loop_overhead_cycles;
  return cycles / cpu.clock_hz;
}

GpuTimeBreakdown GpuSeconds(const GpuProfile& gpu, const CpuModel& cpu,
                            const GpuWork& w) {
  GpuTimeBreakdown t;
  // Lane-cycles: each invocation occupies one SIMD lane; the add and mul
  // pipes dual-issue on VideoCore-class hardware, so ALU ops retire at up to
  // 2 per lane-cycle when dual_issue is set.
  const double alu_cycles = static_cast<double>(w.shader_ops.alu) /
                            (gpu.dual_issue ? 2.0 : 1.0) /
                            gpu.interp_ops_per_native;
  const double sfu_cycles =
      static_cast<double>(w.shader_ops.sfu) * gpu.sfu_cycles +
      static_cast<double>(w.shader_ops.sfu_trans) * gpu.sfu_trans_cycles;
  const std::uint64_t tmu_hits =
      w.shader_ops.tmu >= w.shader_ops.tmu_miss
          ? w.shader_ops.tmu - w.shader_ops.tmu_miss
          : 0;
  const double tmu_cycles =
      static_cast<double>(tmu_hits) * gpu.tmu_cycles +
      static_cast<double>(w.shader_ops.tmu_miss) * gpu.tmu_miss_cycles;
  const double lane_cycles = alu_cycles + sfu_cycles + tmu_cycles;
  const double lanes =
      static_cast<double>(gpu.shader_cores) * gpu.lanes_per_core;
  t.shader = lane_cycles / (lanes * gpu.clock_hz);
  t.upload = static_cast<double>(w.bytes_uploaded) / gpu.upload_bytes_per_sec;
  t.readback =
      static_cast<double>(w.bytes_readback) / gpu.readback_bytes_per_sec;
  t.compile = static_cast<double>(w.program_compiles) * gpu.compile_seconds;
  t.api_overhead =
      static_cast<double>(w.draw_calls) * gpu.draw_overhead_seconds;
  t.host = CpuSeconds(cpu, w.host_work);
  return t;
}

double PeakFlops(const GpuProfile& gpu) {
  return static_cast<double>(gpu.shader_cores) * gpu.lanes_per_core *
         (gpu.dual_issue ? 2.0 : 1.0) * gpu.clock_hz;
}

}  // namespace mgpu::vc4
