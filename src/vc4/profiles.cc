#include "vc4/profiles.h"

namespace mgpu::vc4 {

GpuProfile VideoCoreIV() {
  GpuProfile p;
  p.name = "VideoCore IV";
  p.limits.fragment_highp_float = true;
  p.limits.max_vertex_uniform_vectors = 128;
  p.limits.max_fragment_uniform_vectors = 64;
  p.sfu_error_bits = 16;
  p.alu_mantissa_bits = 23;
  p.flush_denormals = true;
  p.shader_cores = 12;
  p.lanes_per_core = 4;
  p.clock_hz = 250e6;
  p.dual_issue = true;  // 12 * 4 * 2 * 250 MHz = 24 GFLOPS
  return p;
}

GpuProfile IeeeExact() {
  GpuProfile p = VideoCoreIV();
  p.name = "IEEE-exact reference";
  p.sfu_error_bits = 0;
  p.flush_denormals = false;
  return p;
}

GpuProfile Mali400() {
  GpuProfile p;
  p.name = "Mali-400 MP4";
  p.limits.fragment_highp_float = false;  // paper §IV-E footnote 1
  p.sfu_error_bits = 14;
  p.alu_mantissa_bits = 10;  // mediump fragment pipe (fp16)
  p.flush_denormals = true;
  p.shader_cores = 4;  // 4 fragment processors + 1 vertex processor
  p.lanes_per_core = 4;
  p.clock_hz = 265e6;
  p.dual_issue = false;
  return p;
}

GpuProfile Adreno200() {
  GpuProfile p;
  p.name = "Adreno 200";
  p.limits.fragment_highp_float = true;
  p.sfu_error_bits = 16;
  p.alu_mantissa_bits = 23;
  p.flush_denormals = true;
  p.shader_cores = 8;
  p.lanes_per_core = 4;
  p.clock_hz = 133e6;
  p.dual_issue = false;
  return p;
}

GpuProfile PowerVRSGX530() {
  GpuProfile p;
  p.name = "PowerVR SGX530";
  p.limits.fragment_highp_float = true;
  p.sfu_error_bits = 16;
  p.alu_mantissa_bits = 23;
  p.flush_denormals = true;
  p.shader_cores = 2;
  p.lanes_per_core = 4;
  p.clock_hz = 200e6;
  p.dual_issue = true;
  return p;
}

}  // namespace mgpu::vc4
