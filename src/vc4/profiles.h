// GPU platform profiles for the low-end mobile GPUs the paper names
// (VideoCore IV, Mali-400, Adreno 2xx, PowerVR SGX): GLSL limits, arithmetic
// precision characteristics and the throughput parameters of the timing
// model.
#ifndef MGPU_VC4_PROFILES_H_
#define MGPU_VC4_PROFILES_H_

#include <string>

#include "glsl/shader.h"

namespace mgpu::vc4 {

struct GpuProfile {
  std::string name;
  glsl::Limits limits;

  // --- arithmetic model ---
  // Relative error of the special function unit (exp2/log2): 2^-sfu_error_bits.
  // 0 means IEEE-exact. The VideoCore IV SFU delivers ~16 good bits, which is
  // what produces the paper's "accurate within the 15 most significant bits
  // of the mantissa" float result (§V); RECIP/RECIPSQRT get a Newton-Raphson
  // refinement step from the shader compiler and are near-exact.
  int sfu_error_bits = 0;
  // Mantissa bits of ALU results (23 = full fp32). Fragment pipes without
  // highp (Mali-400 class, paper §IV-E footnote 1) are mediump: 10 bits.
  int alu_mantissa_bits = 23;
  bool flush_denormals = false;

  // --- timing model (per-GPU throughput parameters) ---
  int shader_cores = 1;        // QPUs / shader processors
  int lanes_per_core = 4;      // physical SIMD lanes per core per clock
  double clock_hz = 250e6;
  bool dual_issue = true;      // separate add & mul pipes
  // Reciprocal-class SFU ops (recip/rsqrt): the shader compiler pipelines
  // the Newton-Raphson refinement, so they retire nearly every cycle.
  double sfu_cycles = 1.3;
  // Transcendental SFU ops (exp2/log2, trig lowering): SFU register write,
  // multi-cycle latency, result move — unschedulable in straight-line
  // unoptimized kernel code.
  double sfu_trans_cycles = 6.2;
  // Lane-cycles per texture fetch that HITS the texture cache.
  double tmu_cycles = 4.0;
  // Lane-cycles per texture-cache MISS: a full SDRAM round trip that the
  // QPU's thread switching only partially hides for dependent in-loop
  // fetches. Sequential GPGPU streams mostly hit (8 RGBA8 texels per 32-byte
  // line); strided matrix-column walks miss every time — this asymmetry is
  // what separates the paper's sum and sgemm speedups.
  double tmu_miss_cycles = 156.0;
  // The interpreter counts one "op" per scalar AST operation; a real shader
  // compiler emits fewer native QPU instructions (vectorized moves, folded
  // address math). Calibrated against hand-written QPU kernels of the same
  // workloads (see EXPERIMENTS.md).
  double interp_ops_per_native = 2.8;
  // The Pi's GPU owns the memory controller: texture upload/readback run as
  // burst DMA, far faster than CPU-side load/store streaming.
  double upload_bytes_per_sec = 2e9;
  double readback_bytes_per_sec = 1e9;
  double compile_seconds = 1e-3;          // per shader program
  double draw_overhead_seconds = 100e-6;  // per draw call / state setup
};

// Broadcom VideoCore IV (Raspberry Pi): 12 QPUs x 4 lanes x 2 ops @ 250 MHz
// = 24 GFLOPS, the figure the paper quotes.
[[nodiscard]] GpuProfile VideoCoreIV();
// VideoCore IV throughput with an IEEE-exact ALU/SFU: used to verify the
// shader-side transformations in isolation (the paper's observation that
// "the same transformations on the CPU are precise").
[[nodiscard]] GpuProfile IeeeExact();
// ARM Mali-400 MP: highp float unavailable in the fragment processor.
[[nodiscard]] GpuProfile Mali400();
// Qualcomm Adreno 2xx.
[[nodiscard]] GpuProfile Adreno200();
// Imagination PowerVR SGX 530.
[[nodiscard]] GpuProfile PowerVRSGX530();

}  // namespace mgpu::vc4

#endif  // MGPU_VC4_PROFILES_H_
