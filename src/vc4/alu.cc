#include "vc4/alu.h"

#include <cmath>

#include "common/bits.h"

namespace mgpu::vc4 {
namespace {

// Small integer hash (xorshift-multiply) used to derive a reproducible
// per-input "hardware" error.
std::uint32_t Hash32(std::uint32_t x) {
  x ^= x >> 16;
  x *= 0x7feb352du;
  x ^= x >> 15;
  x *= 0x846ca68bu;
  x ^= x >> 16;
  return x;
}

}  // namespace

float Vc4Alu::SfuPerturb(float exact, float input) const {
  if (profile_.sfu_error_bits <= 0) return exact;
  if (!std::isfinite(exact) || exact == 0.0f) return exact;
  const std::uint32_t h = Hash32(mgpu::FloatToBits(input));
  // eta in [-2^-bits, 2^-bits), deterministic in the input.
  const float unit =
      (static_cast<float>(h & 0xffffu) / 32768.0f) - 1.0f;  // [-1, 1)
  const float eta = std::ldexp(unit, -profile_.sfu_error_bits);
  return exact * (1.0f + eta);
}

float Vc4Alu::Exp2(float x) {
  CountSfuTrans(1);
  return Round(SfuPerturb(std::exp2(x), x));
}

float Vc4Alu::Log2(float x) {
  CountSfuTrans(1);
  const float exact = std::log2(x);
  if (!std::isfinite(exact)) return exact;
  // The SFU error is absolute in the output fraction (the integer part comes
  // straight from the exponent field and is exact).
  const std::uint32_t h = Hash32(mgpu::FloatToBits(x) ^ 0x9e3779b9u);
  const float unit = (static_cast<float>(h & 0xffffu) / 32768.0f) - 1.0f;
  const float err = profile_.sfu_error_bits > 0
                        ? std::ldexp(unit, -profile_.sfu_error_bits)
                        : 0.0f;
  return Round(exact + err);
}

float Vc4Alu::Recip(float x) {
  CountSfu(1);
  // SFU estimate + one Newton-Raphson step emitted by the compiler: ~1 ulp.
  return Round(1.0f / x);
}

float Vc4Alu::RecipSqrt(float x) {
  CountSfu(1);
  return Round(1.0f / std::sqrt(x));
}

float Vc4Alu::Round(float x) {
  if (profile_.flush_denormals && x != 0.0f &&
      std::fabs(x) < 1.17549435e-38f) {
    return x < 0.0f ? -0.0f : 0.0f;
  }
  if (profile_.alu_mantissa_bits >= 23) return x;
  return mgpu::RoundToMantissaBits(x, profile_.alu_mantissa_bits);
}

}  // namespace mgpu::vc4
