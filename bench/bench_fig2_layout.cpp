// Experiment E3: regenerates the content of the paper's Figure 2 — the
// floating point representation in CPU (IEEE-754) and GPU (texel bytes)
// with corresponding byte values — and verifies the re-arrangement is a
// bijection.
#include <cstdio>
#include <vector>

#include "common/bits.h"
#include "common/rng.h"
#include "compute/packing.h"

int main() {
  using namespace mgpu;
  std::printf("=== Paper Fig. 2: float representation, CPU vs GPU texel ===\n\n");
  std::printf("CPU (IEEE-754):  [ s | e7..e0 | m22..............m0 ]\n");
  std::printf("GPU texel:       byte3 = e7..e0   byte2 = s|m22..m16   "
              "byte1 = m15..m8   byte0 = m7..m0\n\n");

  const float samples[] = {1.0f,   -1.0f,     1.5f,    -2.75f, 255.0f,
                           0.1f,   3.14159f, -1e-10f, 1e10f,  6.02e23f};
  std::printf("%-12s %-11s | %-26s | %-11s  (texel b0 b1 b2 b3)\n", "value",
              "ieee bits", "s exp      mantissa", "gpu bits");
  for (const float f : samples) {
    const std::uint32_t bits = FloatToBits(f);
    const std::uint32_t gpu = compute::RotateFloatBitsForGpu(bits);
    const auto texels = compute::PackF32(std::array<float, 1>{f});
    std::printf("%-12g 0x%08x  | %u  %3u  0x%06x          | 0x%08x   (%3u %3u "
                "%3u %3u)\n",
                f, bits, FloatSignBit(bits), FloatBiasedExponent(bits),
                FloatMantissa(bits), gpu, texels[0], texels[1], texels[2],
                texels[3]);
  }

  // Bijectivity sweep (the property Fig. 2's layout must satisfy).
  Rng rng(99);
  std::size_t checked = 0, ok = 0;
  for (int i = 0; i < 1'000'000; ++i) {
    const std::uint32_t b = rng.NextU32();
    ++checked;
    ok += compute::RotateFloatBitsFromGpu(compute::RotateFloatBitsForGpu(b)) ==
          b;
  }
  // Exhaustive over all (sign, exponent) pairs.
  std::size_t field_ok = 0, field_total = 0;
  for (std::uint32_t s = 0; s <= 1; ++s) {
    for (std::uint32_t e = 0; e <= 255; ++e) {
      const std::uint32_t b = MakeFloatBits(s, e, 0x2aaaaa);
      const std::uint32_t g = compute::RotateFloatBitsForGpu(b);
      ++field_total;
      // byte3 must equal the biased exponent; byte2's MSB the sign.
      field_ok += ((g >> 24) == e && ((g >> 23) & 1u) == s) ? 1 : 0;
    }
  }
  std::printf("\nround-trip bijectivity: %zu/%zu random bit patterns\n", ok,
              checked);
  std::printf("field placement:        %zu/%zu (sign, exponent) pairs land "
              "in the documented bytes\n",
              field_ok, field_total);
  return ok == checked && field_ok == field_total ? 0 : 1;
}
