// Experiment E1 (DESIGN.md): regenerates the paper's Section V results —
// GPU-vs-CPU speedups for the `sum` and `sgemm` benchmarks in integer and
// floating-point configurations at 1024-element-per-dimension scale,
// "including time spent in data transfers and kernel compilations".
//
// GPU operation counts are MEASURED by running the kernels through the
// GLES2 simulator at calibration sizes and extrapolating exactly (linear
// for sum, affine-in-K for sgemm); times come from the VideoCore IV /
// ARM1176 timing model (vc4/timing.h). CPU counts are the analytic formulas
// of cpuref, validated by tests. Machine constants were calibrated once
// against the paper's four published speedups — see EXPERIMENTS.md.
#include <cstdio>

#include "bench_util.h"
#include "compute/device.h"
#include "vc4/profiles.h"

int main() {
  using namespace mgpu;
  compute::Device device;  // VideoCore IV model
  const vc4::GpuProfile gpu = device.profile();
  const vc4::CpuModel cpu = vc4::Arm1176();

  std::printf("=== Paper Section V: application wall-time speedups ===\n");
  std::printf("platform: %s vs %s\n", gpu.name.c_str(), cpu.name.c_str());
  std::printf("workload: 1024x1024 elements (sum), 1024x1024 matrices "
              "(sgemm), random values\n\n");

  constexpr std::uint64_t kSumN = 1024ull * 1024ull;
  constexpr int kGemmN = 1024;

  std::vector<bench::SpeedupRow> rows;

  // --- sum ---
  {
    const vc4::GpuWork wi =
        bench::MeasureSumWork(device, compute::ElemType::kI32, kSumN);
    rows.push_back({"sum", "int",
                    vc4::CpuSeconds(cpu, cpuref::AddWorkI32(kSumN)),
                    vc4::GpuSeconds(gpu, cpu, wi), 7.2});
    const vc4::GpuWork wf =
        bench::MeasureSumWork(device, compute::ElemType::kF32, kSumN);
    rows.push_back({"sum", "float",
                    vc4::CpuSeconds(cpu, cpuref::AddWorkF32(kSumN)),
                    vc4::GpuSeconds(gpu, cpu, wf), 6.5});
  }

  // --- sgemm ---
  {
    const vc4::GpuWork wi =
        bench::MeasureGemmWork(device, compute::ElemType::kI32, kGemmN);
    rows.push_back({"sgemm", "int",
                    vc4::CpuSeconds(cpu, cpuref::GemmWorkI32(kGemmN)),
                    vc4::GpuSeconds(gpu, cpu, wi), 6.5});
    const vc4::GpuWork wf =
        bench::MeasureGemmWork(device, compute::ElemType::kF32, kGemmN);
    rows.push_back({"sgemm", "float",
                    vc4::CpuSeconds(cpu, cpuref::SgemmWorkF32(kGemmN)),
                    vc4::GpuSeconds(gpu, cpu, wf), 6.3});
  }

  bench::PrintSpeedupTable(rows);

  std::printf("\nGPU time breakdown [ms]:\n");
  std::printf("%-8s %-6s %9s %9s %9s %9s %9s\n", "kernel", "type", "shader",
              "upload", "readback", "compile", "host");
  const char* names[4] = {"sum", "sum", "sgemm", "sgemm"};
  const char* types[4] = {"int", "float", "int", "float"};
  for (int i = 0; i < 4; ++i) {
    const auto& t = rows[static_cast<std::size_t>(i)].gpu;
    std::printf("%-8s %-6s %9.2f %9.2f %9.2f %9.2f %9.2f\n", names[i],
                types[i], t.shader * 1e3, t.upload * 1e3, t.readback * 1e3,
                t.compile * 1e3, t.host * 1e3);
  }

  std::printf("\nshape checks (the paper's qualitative claims):\n");
  const bool gpu_wins =
      rows[0].speedup() > 1 && rows[1].speedup() > 1 &&
      rows[2].speedup() > 1 && rows[3].speedup() > 1;
  const bool int_beats_float_sum = rows[0].speedup() > rows[1].speedup();
  const bool int_beats_float_gemm = rows[2].speedup() > rows[3].speedup();
  std::printf("  [%s] GPU faster than CPU on all four configurations\n",
              gpu_wins ? "ok" : "FAIL");
  std::printf("  [%s] int speedup > float speedup (sum):   CPU integer ALU "
              "is fast, GPU float path pays pack/unpack\n",
              int_beats_float_sum ? "ok" : "FAIL");
  std::printf("  [%s] int speedup > float speedup (sgemm)\n",
              int_beats_float_gemm ? "ok" : "FAIL");
  return gpu_wins && int_beats_float_sum && int_beats_float_gemm ? 0 : 1;
}
