// Ablation A4 (paper §IV-E footnote 1): the float transformations across
// GPU profiles. VideoCore IV keeps ~15 mantissa bits; Mali-400-class parts
// support highp float "in vertex processor only", so the fragment-stage
// float path collapses to mediump accuracy; an IEEE-exact ALU shows the
// algebra itself is lossless. Also prints the glGetShaderPrecisionFormat
// capability the paper prescribes querying.
#include <cstdio>
#include <vector>

#include "common/bits.h"
#include "common/rng.h"
#include "compute/kernel.h"
#include "vc4/profiles.h"

namespace {

using namespace mgpu;

double MeanBits(compute::Device& d, const std::vector<float>& v) {
  compute::PackedBuffer in(d, compute::ElemType::kF32, v.size());
  compute::PackedBuffer out(d, compute::ElemType::kF32, v.size());
  in.Upload(std::span<const float>(v));
  compute::Kernel k(d, {.name = "identity",
                        .inputs = {{"u_src", compute::ElemType::kF32}},
                        .output = compute::ElemType::kF32,
                        .extra_decls = "",
                        .body = "float gp_kernel(vec2 p) { return "
                                "gp_fetch_u_src(gp_linear_index()); }\n"});
  k.Run(out, {&in});
  std::vector<float> back(v.size());
  out.Download(std::span<float>(back));
  double sum = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    sum += MatchingMantissaBits(v[i], back[i]);
  }
  return sum / static_cast<double>(v.size());
}

}  // namespace

int main() {
  Rng rng(2026);
  std::vector<float> v(4096);
  for (auto& x : v) x = rng.NextWorkloadFloat();

  std::printf("=== Ablation: float path across low-end GPU profiles ===\n\n");
  std::printf("%-26s %22s %14s\n", "profile",
              "frag highp (query bits)", "round-trip");

  const vc4::GpuProfile profiles[] = {vc4::IeeeExact(), vc4::VideoCoreIV(),
                                      vc4::Adreno200(), vc4::PowerVRSGX530(),
                                      vc4::Mali400()};
  double vc4_bits = 0, mali_bits = 0, exact_bits = 0;
  for (const vc4::GpuProfile& p : profiles) {
    compute::DeviceOptions o;
    o.profile = p;
    compute::Device d(o);
    const int query = d.FragmentHighpMantissaBits();
    const double bits = MeanBits(d, v);
    std::printf("%-26s %17d bits   %9.1f bits\n", p.name.c_str(), query,
                bits);
    if (p.name == "VideoCore IV") vc4_bits = bits;
    if (p.name == "Mali-400 MP4") mali_bits = bits;
    if (p.name == "IEEE-exact reference") exact_bits = bits;
  }

  std::printf("\nchecks:\n");
  const bool exact_ok = exact_bits == 23.0;
  const bool vc4_ok = vc4_bits >= 14.0 && vc4_bits <= 19.0;
  const bool mali_collapses = mali_bits < vc4_bits - 3.0;
  std::printf("  [%s] the transformations themselves are lossless (exact "
              "ALU: 23.0 bits)\n",
              exact_ok ? "ok" : "FAIL");
  std::printf("  [%s] VideoCore IV lands at the paper's ~15-bit result\n",
              vc4_ok ? "ok" : "FAIL");
  std::printf("  [%s] fragment-mediump hardware (Mali-400) collapses the "
              "float path — the paper's\n        footnote: highp \"in "
              "vertex processor only\" means fp kernels must move to the\n"
              "        vertex stage or accept mediump\n",
              mali_collapses ? "ok" : "FAIL");
  return exact_ok && vc4_ok && mali_collapses ? 0 : 1;
}
