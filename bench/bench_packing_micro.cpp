// Micro-benchmark M1: host-side pack/unpack throughput on this machine
// (google-benchmark wall time). Quantifies the paper's §V remark about the
// CPU-side "partial bit re-arrangements for the floating point data":
// integer formats are straight copies, floats pay the Fig. 2 rotation.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "compute/packing.h"

namespace {

using namespace mgpu;

void BM_PackU32(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::uint32_t> v(static_cast<std::size_t>(state.range(0)));
  for (auto& x : v) x = rng.NextU32();
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute::PackU32(v));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 4);
}
BENCHMARK(BM_PackU32)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_PackF32(benchmark::State& state) {
  Rng rng(2);
  std::vector<float> v(static_cast<std::size_t>(state.range(0)));
  for (auto& x : v) x = rng.NextWorkloadFloat();
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute::PackF32(v));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 4);
}
BENCHMARK(BM_PackF32)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_UnpackF32(benchmark::State& state) {
  Rng rng(3);
  std::vector<float> v(static_cast<std::size_t>(state.range(0)));
  for (auto& x : v) x = rng.NextWorkloadFloat();
  const auto texels = compute::PackF32(v);
  std::vector<float> out(v.size());
  for (auto _ : state) {
    compute::UnpackF32(texels, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 4);
}
BENCHMARK(BM_UnpackF32)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_PackU8(benchmark::State& state) {
  Rng rng(4);
  const auto v = rng.ByteVector(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute::PackU8(v));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PackU8)->Arg(1 << 16)->Arg(1 << 20);

void BM_RotateFloatBits(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::uint32_t> bits(4096);
  for (auto& b : bits) b = rng.NextU32();
  for (auto _ : state) {
    std::uint32_t acc = 0;
    for (const std::uint32_t b : bits) {
      acc ^= compute::RotateFloatBitsForGpu(b);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits.size()));
}
BENCHMARK(BM_RotateFloatBits);

}  // namespace

BENCHMARK_MAIN();
