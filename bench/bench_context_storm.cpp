// Context-storm benchmark: hundreds of independent GL contexts each queuing
// draws through the shared command-stream device (ISSUE 10). The draw-storm
// bench prices the per-draw tax inside ONE context; a GPGPU service at scale
// instead multiplexes many small clients, so the cost under test here is the
// submission layer itself — recording draws into command lists, handing them
// to the single device thread over the fair FIFO, and joining at Finish().
// The async leg must stay byte-identical to the same storm executed inline
// (MGPU_ASYNC=0 semantics via ContextConfig::async_submit), and CI's
// check_bench.py gate compares the deterministic metrics (combined
// framebuffer hash, ALU ops, identity bools) bit-exactly against the
// committed baseline.
//
// Usage: bench_context_storm [--quick] [--contexts N] [--rounds N]
//   --quick: CI smoke size (fewer rounds), same metric names.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "gles2/cmdstream.h"
#include "gles2/context.h"

namespace {

using namespace mgpu;
using namespace mgpu::gles2;

constexpr int kTargetSize = 64;  // tiny per-client target: the submission
                                 // layer, not shading, dominates

constexpr char kVs[] = R"(
attribute vec2 a_pos;
uniform vec2 u_offset;
varying vec2 v_uv;
void main() {
  v_uv = a_pos * 2.0 + 0.5;
  gl_Position = vec4(a_pos + u_offset, 0.0, 1.0);
}
)";

constexpr char kFs[] = R"(
precision highp float;
varying vec2 v_uv;
uniform vec4 u_tint;
void main() {
  gl_FragColor = vec4(v_uv.x * u_tint.x, v_uv.y * u_tint.y, u_tint.z, 1.0);
}
)";

// One small triangle (~1/4 of the 64px target) repositioned per draw through
// u_offset.
constexpr float kTri[6] = {0.0f, 0.0f, 0.45f, 0.0f, 0.0f, 0.45f};

struct StormResult {
  double seconds = 0.0;
  std::uint64_t alu_ops = 0;
  std::uint32_t fb_hash = 0;  // FNV over every context's framebuffer hash
  std::uint64_t lists_executed = 0;
  bool draw_ok = true;
};

std::uint32_t Fnv1a(const std::uint8_t* bytes, std::size_t n,
                    std::uint32_t h = 2166136261u) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 16777619u;
  }
  return h;
}

GLuint BuildProgram(gles2::Context& ctx) {
  const GLuint vs = ctx.CreateShader(GL_VERTEX_SHADER);
  ctx.ShaderSource(vs, kVs);
  ctx.CompileShader(vs);
  const GLuint fs = ctx.CreateShader(GL_FRAGMENT_SHADER);
  ctx.ShaderSource(fs, kFs);
  ctx.CompileShader(fs);
  const GLuint p = ctx.CreateProgram();
  ctx.AttachShader(p, vs);
  ctx.AttachShader(p, fs);
  ctx.LinkProgram(p);
  GLint ok = GL_FALSE;
  ctx.GetProgramiv(p, GL_LINK_STATUS, &ok);
  if (ok != GL_TRUE) {
    std::fprintf(stderr, "link failed: %s\n",
                 ctx.GetProgramInfoLog(p).c_str());
  }
  return p;
}

// One client: a context plus its pre-resolved uniform locations and a
// deterministic per-client RNG stream, so the async and inline legs issue
// bit-identical command sequences.
struct Client {
  std::unique_ptr<gles2::Context> ctx;
  GLint u_offset = -1;
  GLint u_tint = -1;
  Rng rng{0};
};

// Runs the storm: `contexts` clients, `rounds` rounds; each round every
// client records one retinted, repositioned draw and flushes, so the device
// FIFO interleaves hundreds of lists per round. Timed region = the
// record/submit rounds plus the Finish() joins — under async the draw loop
// alone only measures enqueue, so the joins must sit inside the clock.
StormResult RunStorm(int contexts, int rounds, int async_submit) {
  std::vector<Client> clients(static_cast<std::size_t>(contexts));
  for (int i = 0; i < contexts; ++i) {
    gles2::ContextConfig cfg;
    cfg.width = kTargetSize;
    cfg.height = kTargetSize;
    cfg.has_depth = false;
    cfg.shader_threads = 1;
    cfg.async_submit = async_submit;
    Client& c = clients[static_cast<std::size_t>(i)];
    c.ctx = std::make_unique<gles2::Context>(cfg);
    const GLuint prog = BuildProgram(*c.ctx);
    c.ctx->UseProgram(prog);
    const GLint a_pos = c.ctx->GetAttribLocation(prog, "a_pos");
    c.u_offset = c.ctx->GetUniformLocation(prog, "u_offset");
    c.u_tint = c.ctx->GetUniformLocation(prog, "u_tint");
    c.ctx->EnableVertexAttribArray(static_cast<GLuint>(a_pos));
    c.ctx->VertexAttribPointer(static_cast<GLuint>(a_pos), 2, GL_FLOAT,
                               GL_FALSE, 0, kTri);
    c.ctx->ClearColor(0.0f, 0.0f, 0.0f, 1.0f);
    c.ctx->Clear(GL_COLOR_BUFFER_BIT);
    c.ctx->Finish();  // setup executed before the clock starts
    c.rng = Rng(1000u + static_cast<std::uint32_t>(i));
  }

  StormResult r;
  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) {
    for (Client& c : clients) {
      c.ctx->Uniform2f(c.u_offset, c.rng.NextFloat(-0.95f, 0.5f),
                       c.rng.NextFloat(-0.95f, 0.5f));
      c.ctx->Uniform4f(c.u_tint, c.rng.NextFloat01(), c.rng.NextFloat01(),
                       c.rng.NextFloat01(), 1.0f);
      c.ctx->DrawArrays(GL_TRIANGLES, 0, 3);
      c.ctx->Flush();
    }
  }
  for (Client& c : clients) c.ctx->Finish();
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<std::uint8_t> fb(
      static_cast<std::size_t>(kTargetSize) * kTargetSize * 4);
  for (Client& c : clients) {
    r.draw_ok =
        r.draw_ok && c.ctx->GetError() == static_cast<GLenum>(GL_NO_ERROR);
    r.alu_ops += c.ctx->alu().counts().alu;
    c.ctx->ReadPixels(0, 0, kTargetSize, kTargetSize, GL_RGBA,
                      GL_UNSIGNED_BYTE, fb.data());
    const std::uint32_t h = Fnv1a(fb.data(), fb.size());
    r.fb_hash = Fnv1a(reinterpret_cast<const std::uint8_t*>(&h), sizeof(h),
                      r.fb_hash == 0 ? 2166136261u : r.fb_hash);
    r.lists_executed += c.ctx->command_stream_stats().lists_executed;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  int contexts = 384;
  int rounds = 24;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      contexts = 256;
      rounds = 8;
    } else if (std::strcmp(argv[i], "--contexts") == 0 && i + 1 < argc) {
      contexts = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = std::atoi(argv[++i]);
    }
  }
  const int draws = contexts * rounds;

  std::printf(
      "=== Context storm: %d contexts x %d rounds (%d queued draws) on "
      "%dx%d targets ===\n\n",
      contexts, rounds, draws, kTargetSize, kTargetSize);

  // Min over identical runs, as in the other benches: the storm is short
  // enough that one scheduler preemption skews a run by more than the CI
  // gate's thresholds. The deterministic metrics are identical across runs.
  constexpr int kReps = 2;
  auto best_of = [&](int async_submit) {
    StormResult best = RunStorm(contexts, rounds, async_submit);
    for (int r = 1; r < kReps; ++r) {
      const StormResult again = RunStorm(contexts, rounds, async_submit);
      if (again.seconds < best.seconds) best = again;
    }
    return best;
  };

  const StormResult async = best_of(/*async_submit=*/1);
  std::printf("  async submit:   %8.3f s  (%8.0f draws/s, best of %d)\n",
              async.seconds, draws / async.seconds, kReps);
  std::printf("  device lists:   %llu executed across %d contexts\n",
              static_cast<unsigned long long>(async.lists_executed), contexts);

  const StormResult inline_mode = best_of(/*async_submit=*/0);
  std::printf("  inline submit:  %8.3f s  (%8.0f draws/s)\n",
              inline_mode.seconds, draws / inline_mode.seconds);

  // The whole point of the command stream: deferred execution through the
  // device thread must be invisible — same framebuffer bytes in every one of
  // the hundreds of contexts, same total op counts, no errors.
  const bool identical = async.fb_hash == inline_mode.fb_hash &&
                         async.alu_ops == inline_mode.alu_ops;
  std::printf("  async vs inline: %s (hash %08x vs %08x, alu %llu vs %llu)\n",
              identical ? "identical" : "MISMATCH", async.fb_hash,
              inline_mode.fb_hash,
              static_cast<unsigned long long>(async.alu_ops),
              static_cast<unsigned long long>(inline_mode.alu_ops));
  std::printf("  submit overhead: %.2fx vs inline\n",
              async.seconds / inline_mode.seconds);

  const bool ok = identical && async.draw_ok && inline_mode.draw_ok &&
                  async.lists_executed > 0;

  bench::JsonBenchWriter json("context_storm");
  json.Add("contexts", contexts, "count");
  json.Add("draws", draws, "count");
  json.Add("async_storm", async.seconds, "s");
  json.Add("async_draws_per_sec", draws / async.seconds, "/s");
  json.Add("inline_storm", inline_mode.seconds, "s");
  json.Add("async_overhead_vs_inline", async.seconds / inline_mode.seconds,
           "x");
  json.Add("async_inline_identical", identical ? 1.0 : 0.0, "bool");
  json.Add("fb_hash", async.fb_hash, "hash");
  json.Add("alu_ops_per_draw", static_cast<double>(async.alu_ops) / draws,
           "ops");
  json.Add("lists_executed", static_cast<double>(async.lists_executed),
           "count");
  json.Add("draw_errors_ok", async.draw_ok && inline_mode.draw_ok ? 1.0 : 0.0,
           "bool");
  if (!json.Write()) {
    std::fprintf(stderr,
                 "warning: could not write BENCH_context_storm.json\n");
  }

  std::printf("\nresult: %s\n", ok ? "ok" : "FAILURE");
  return ok ? 0 : 1;
}
