// Experiment E2: the paper's Section V precision result — "the GPU output
// is accurate with respect to the fp32 format used by the CPU, within the
// 15 most significant bits of the mantissa", better than fp16 and between
// the fp24 of early desktop GPGPU and fp32; and "the same transformations
// on the CPU are precise" (our IEEE-exact ALU run).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/bits.h"
#include "common/rng.h"
#include "compute/kernel.h"
#include "compute/packing.h"
#include "vc4/profiles.h"

namespace {

using namespace mgpu;

std::vector<float> RoundTrip(compute::Device& d, const std::vector<float>& v) {
  compute::PackedBuffer in(d, compute::ElemType::kF32, v.size());
  compute::PackedBuffer out(d, compute::ElemType::kF32, v.size());
  in.Upload(std::span<const float>(v));
  compute::Kernel k(d, {.name = "identity",
                        .inputs = {{"u_src", compute::ElemType::kF32}},
                        .output = compute::ElemType::kF32,
                        .extra_decls = "",
                        .body = "float gp_kernel(vec2 p) { return "
                                "gp_fetch_u_src(gp_linear_index()); }\n"});
  k.Run(out, {&in});
  std::vector<float> back(v.size());
  out.Download(std::span<float>(back));
  return back;
}

struct Stats {
  double mean_bits;
  int min_bits;
  int p5_bits;  // 5th percentile
};

Stats Measure(const std::vector<float>& expected,
              const std::vector<float>& actual) {
  std::vector<int> bits(expected.size());
  double sum = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    bits[i] = MatchingMantissaBits(expected[i], actual[i]);
    sum += bits[i];
  }
  std::sort(bits.begin(), bits.end());
  return {sum / static_cast<double>(bits.size()), bits.front(),
          bits[bits.size() / 20]};
}

}  // namespace

int main() {
  Rng rng(2026);
  std::vector<float> v(16384);
  for (auto& x : v) x = rng.NextWorkloadFloat();

  std::printf("=== Paper Section V: floating-point precision through the "
              "GPU pipeline ===\n");
  std::printf("workload: %zu random fp32 values, identity kernel "
              "(upload -> unpack -> pack -> readback)\n\n",
              v.size());
  std::printf("%-28s %10s %10s %10s\n", "platform", "mean bits", "p5 bits",
              "min bits");

  // CPU-side transformations (host pack/unpack only): bit exact.
  {
    std::vector<float> back(v.size());
    compute::UnpackF32(compute::PackF32(v), back);
    const Stats s = Measure(v, back);
    std::printf("%-28s %10.1f %10d %10d   (paper: \"precise\")\n",
                "CPU transformations", s.mean_bits, s.p5_bits, s.min_bits);
  }

  // IEEE-exact GPU: isolates the algebra from the platform.
  {
    compute::DeviceOptions o;
    o.profile = vc4::IeeeExact();
    compute::Device d(o);
    const Stats s = Measure(v, RoundTrip(d, v));
    std::printf("%-28s %10.1f %10d %10d\n", "GPU (IEEE-exact ALU)",
                s.mean_bits, s.p5_bits, s.min_bits);
  }

  // The VideoCore IV model: the paper's measured platform.
  Stats vc;
  {
    compute::Device d;
    vc = Measure(v, RoundTrip(d, v));
    std::printf("%-28s %10.1f %10d %10d   (paper: ~15)\n",
                "GPU (VideoCore IV model)", vc.mean_bits, vc.p5_bits,
                vc.min_bits);
  }

  std::printf("\nreference formats: fp16 mantissa = 10 bits, fp24 = 16, "
              "fp32 = 23\n");
  const bool better_than_fp16 = vc.mean_bits > 10.0;
  const bool below_fp32 = vc.mean_bits < 23.0;
  const bool near_15 = vc.p5_bits >= 13 && vc.mean_bits <= 19.0;
  std::printf("  [%s] better than half-float (fp16)\n",
              better_than_fp16 ? "ok" : "FAIL");
  std::printf("  [%s] between fp24-era precision and fp32 (not bit-exact)\n",
              below_fp32 ? "ok" : "FAIL");
  std::printf("  [%s] ~15 most-significant mantissa bits preserved\n",
              near_15 ? "ok" : "FAIL");
  return better_than_fp16 && below_fp32 && near_15 ? 0 : 1;
}
