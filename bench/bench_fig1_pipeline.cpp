// Experiment E4: the paper's Figure 1 / §II-A compute mapping — the
// graphics pipeline as a compute substrate. Verifies, across output sizes,
// that the screen-covering two-triangle quad shades exactly one fragment
// per output element and that the varying/coordinate path addresses each
// element exactly (no over/under-shading, no addressing drift at any size).
//
// Also times the sweep on both shader execution engines — the bytecode VM
// (production path) and the tree-walking interpreter (oracle) — plus a
// thread-scaling sweep over the tiled rasterizer's worker pool (1/2/4/
// hardware_concurrency shading workers), and emits
// BENCH_fig1_pipeline.json and BENCH_threads_scaling.json for the perf
// trajectory.
// Usage: bench_fig1_pipeline [--quick]
//   --quick: CI smoke size — truncated sweep and a 1/2-thread-only scaling
//   pass. Metric names match the full run, but values are size-dependent:
//   gate a run only against a baseline recorded at the same size (CI and
//   ci/bench_baseline.json both use --quick).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "compute/kernel.h"
#include "gles2/context.h"
#include "glsl/simd.h"
#include "vc4/profiles.h"

namespace {

using namespace mgpu;

struct SweepRow {
  int elements = 0;
  std::uint64_t fragments = 0;
  bool one_to_one = false;
  int bad = 0;
};

struct SweepResult {
  bool ok = true;
  double seconds = 0.0;
  std::vector<SweepRow> rows;
};

// Runs the 1:1 coverage/addressing sweep on the given engine. The timed
// region covers the whole dispatch pipeline — kernel compile, upload,
// shading, readback, validation — identically for both engines (console
// output happens outside), so the reported speedup is end-to-end wall
// clock, a conservative lower bound on the pure shader-execution speedup.
SweepResult RunSweep(gles2::ExecEngine engine, int shader_threads = 1,
                     bool quick = false) {
  compute::DeviceOptions o;
  o.profile = vc4::IeeeExact();
  o.exec_engine = engine;
  o.shader_threads = shader_threads;
  compute::Device d(o);

  static const std::vector<int> kFullSizes = {1,     2,     16,    100,
                                              4096,  10000, 65536, 250000};
  static const std::vector<int> kQuickSizes = {1, 2, 16, 100, 4096, 10000, 65536};

  SweepResult result;
  const auto t0 = std::chrono::steady_clock::now();
  for (const int n : quick ? kQuickSizes : kFullSizes) {
    compute::PackedBuffer out(d, compute::ElemType::kI32,
                              static_cast<std::size_t>(n));
    compute::Kernel k(d, {.name = "self_index",
                          .inputs = {},
                          .output = compute::ElemType::kI32,
                          .extra_decls = "",
                          .body = "float gp_kernel(vec2 p) { return "
                                  "gp_linear_index(); }\n"});
    (void)d.ConsumeWork();
    k.Run(out, {});
    const vc4::GpuWork w = d.ConsumeWork();
    std::vector<std::int32_t> back(static_cast<std::size_t>(n));
    out.Download(std::span<std::int32_t>(back));
    SweepRow row;
    row.elements = n;
    row.fragments = w.fragments;
    for (int i = 0; i < n; ++i) {
      row.bad += back[static_cast<std::size_t>(i)] != i;
    }
    const std::uint64_t texels =
        static_cast<std::uint64_t>(out.tex_width()) * out.tex_height();
    row.one_to_one = w.fragments == texels;
    result.ok = result.ok && row.one_to_one && row.bad == 0;
    result.rows.push_back(row);
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

// --- vector-heavy scene: vec3 lighting in the fragment shader -------------
// The Fig. 1 sweep's self-index kernel is scalar-float-only, which the
// batched engine already fast-pathed in PR 4; this scene measures the SoA
// win where it matters — whole-vector arithmetic, normalize/dot/pow — with
// uniform control flow, so the lockstep executor drives the vector kernels
// for full 16-lane batches. Byte-identical across engines by construction
// (FNV hash of the framebuffer is a gated deterministic metric).

using namespace mgpu::gles2;

constexpr char kLightVs[] = R"(
attribute vec2 a_pos;
varying vec3 v_nrm;
varying vec3 v_pos;
void main() {
  v_pos = vec3(a_pos * 2.0, a_pos.x - a_pos.y);
  v_nrm = vec3(a_pos.y, 1.0 - a_pos.x, 0.5 + a_pos.x * a_pos.y);
  gl_Position = vec4(a_pos, 0.0, 1.0);
}
)";

constexpr char kLightFs[] = R"(
precision highp float;
varying vec3 v_nrm;
varying vec3 v_pos;
uniform vec3 u_light;
uniform vec3 u_tint;
void main() {
  vec3 n = normalize(v_nrm);
  vec3 l = normalize(u_light - v_pos);
  float diff = max(dot(n, l), 0.0);
  vec3 h = normalize(l + vec3(0.0, 0.0, 1.0));
  float spec = pow(max(dot(n, h), 0.0), 16.0);
  vec3 col = u_tint * diff + cross(n, l) * 0.125 + vec3(spec);
  gl_FragColor = vec4(fract(col), 1.0);
}
)";

struct VectorHeavyResult {
  double seconds = 0.0;
  std::uint32_t fb_hash = 0;
  bool ok = true;
};

std::uint32_t Fnv1a(const std::vector<std::uint8_t>& bytes) {
  std::uint32_t h = 2166136261u;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 16777619u;
  }
  return h;
}

// `simd` follows ContextConfig::simd (-1 auto, 0 scalar SoA, 1 SSE2 cap,
// 2 AVX2 cap); `batch_width` is the rasterizer's fragment-batch fill width.
// Every combination must hash identically — only wall clock may move.
VectorHeavyResult RunVectorHeavy(gles2::ExecEngine engine, int size,
                                 int simd = -1, int batch_width = 16) {
  gles2::ContextConfig cfg;
  cfg.width = size;
  cfg.height = size;
  cfg.has_depth = false;
  cfg.shader_threads = 1;
  cfg.exec_engine = engine;
  cfg.simd = simd;
  cfg.fragment_batch_width = batch_width;
  gles2::Context ctx(cfg);

  const GLuint vs = ctx.CreateShader(GL_VERTEX_SHADER);
  ctx.ShaderSource(vs, kLightVs);
  ctx.CompileShader(vs);
  const GLuint fs = ctx.CreateShader(GL_FRAGMENT_SHADER);
  ctx.ShaderSource(fs, kLightFs);
  ctx.CompileShader(fs);
  const GLuint prog = ctx.CreateProgram();
  ctx.AttachShader(prog, vs);
  ctx.AttachShader(prog, fs);
  ctx.LinkProgram(prog);
  GLint linked = GL_FALSE;
  ctx.GetProgramiv(prog, GL_LINK_STATUS, &linked);
  VectorHeavyResult r;
  if (linked != GL_TRUE) {
    std::fprintf(stderr, "vector_heavy link failed: %s\n",
                 ctx.GetProgramInfoLog(prog).c_str());
    r.ok = false;
    return r;
  }
  ctx.UseProgram(prog);
  ctx.Uniform3f(ctx.GetUniformLocation(prog, "u_light"), 0.4f, 0.9f, 1.5f);
  ctx.Uniform3f(ctx.GetUniformLocation(prog, "u_tint"), 0.6f, 0.3f, 0.8f);

  static const float kQuad[12] = {-1, -1, 1, -1, 1, 1, -1, -1, 1, 1, -1, 1};
  const GLuint loc =
      static_cast<GLuint>(ctx.GetAttribLocation(prog, "a_pos"));
  ctx.EnableVertexAttribArray(loc);
  ctx.VertexAttribPointer(loc, 2, GL_FLOAT, GL_FALSE, 0, kQuad);
  ctx.ClearColor(0.0f, 0.0f, 0.0f, 1.0f);
  ctx.Clear(GL_COLOR_BUFFER_BIT);

  // Async submission (default-on) defers execution; bracket the timed region
  // with Finish() so it measures the draw, not the enqueue.
  ctx.Finish();
  const auto t0 = std::chrono::steady_clock::now();
  ctx.DrawArrays(GL_TRIANGLES, 0, 6);
  ctx.Finish();
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.ok = ctx.GetError() == static_cast<GLenum>(GL_NO_ERROR);

  std::vector<std::uint8_t> fb(static_cast<std::size_t>(size) * size * 4);
  ctx.ReadPixels(0, 0, size, size, GL_RGBA, GL_UNSIGNED_BYTE, fb.data());
  r.fb_hash = Fnv1a(fb);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  std::printf("=== Paper Fig. 1: one fragment per output element%s ===\n\n",
              quick ? " (quick)" : "");

  // In quick (CI-gated) mode the sweeps are short enough that scheduler
  // noise dwarfs the gate thresholds; take the min of 3 runs. The full run
  // keeps single-pass timings, comparable with the recorded history.
  const int reps = quick ? 3 : 1;
  auto best_sweep = [&](gles2::ExecEngine engine, int threads) {
    SweepResult best = RunSweep(engine, threads, quick);
    bool all_ok = best.ok;
    for (int r = 1; r < reps; ++r) {
      SweepResult again = RunSweep(engine, threads, quick);
      all_ok = all_ok && again.ok;
      if (again.seconds < best.seconds) best = again;
    }
    best.ok = all_ok;
    return best;
  };

  const SweepResult batched = best_sweep(gles2::ExecEngine::kBatchedVm, 1);
  const SweepResult vm = best_sweep(gles2::ExecEngine::kBytecodeVm, 1);
  const SweepResult tree = best_sweep(gles2::ExecEngine::kTreeWalk, 1);

  std::printf("%10s %10s %12s %14s\n", "elements", "fragments", "1:1?",
              "addressing");
  for (const SweepRow& r : vm.rows) {
    std::printf("%10d %10llu %12s %10d bad\n", r.elements,
                static_cast<unsigned long long>(r.fragments),
                r.one_to_one ? "yes" : "NO", r.bad);
  }

  std::printf("\npipeline stages exercised per dispatch (paper Fig. 1):\n");
  std::printf("  vertex shader (pass-through, challenge III-1) -> triangle "
              "assembly (2-triangle quad, III-2)\n");
  std::printf("  -> rasterizer (top-left fill rule, exactly-once coverage) "
              "-> fragment shader (the kernel)\n");
  std::printf("  -> framebuffer pack (Eq. 2) -> ReadPixels (challenge "
              "III-7)\n");

  std::printf("\nexecution engines (same sweep, wall clock):\n");
  std::printf("  batched VM (default):  %8.3f s  [coverage %s]\n",
              batched.seconds, batched.ok ? "ok" : "FAILURE");
  std::printf("  scalar bytecode VM:    %8.3f s  [coverage %s]\n", vm.seconds,
              vm.ok ? "ok" : "FAILURE");
  std::printf("  tree-walking oracle:   %8.3f s  [coverage %s]\n",
              tree.seconds, tree.ok ? "ok" : "FAILURE");
  std::printf("  scalar VM speedup vs oracle:   %.2fx\n",
              tree.seconds / vm.seconds);
  std::printf("  batched speedup vs scalar VM:  %.2fx\n",
              vm.seconds / batched.seconds);

  // --- vector-heavy lighting scene: the SoA-kernel showcase ---------------
  const int vh_size = quick ? 256 : 512;
  auto best_vh = [&](gles2::ExecEngine engine, int simd = -1,
                     int batch_width = 16) {
    VectorHeavyResult best =
        RunVectorHeavy(engine, vh_size, simd, batch_width);
    bool all_ok = best.ok;
    for (int r = 1; r < reps; ++r) {
      VectorHeavyResult again =
          RunVectorHeavy(engine, vh_size, simd, batch_width);
      all_ok = all_ok && again.ok && again.fb_hash == best.fb_hash;
      if (again.seconds < best.seconds) best.seconds = again.seconds;
    }
    best.ok = all_ok;
    return best;
  };
  const VectorHeavyResult vh_batched =
      best_vh(gles2::ExecEngine::kBatchedVm);
  const VectorHeavyResult vh_scalar =
      best_vh(gles2::ExecEngine::kBytecodeVm);
  const bool vh_identical = vh_batched.fb_hash == vh_scalar.fb_hash;
  std::printf("\nvector-heavy scene (%dx%d vec3 lighting, "
              "normalize/dot/pow per fragment):\n",
              vh_size, vh_size);
  std::printf("  batched VM:  %8.3f s\n", vh_batched.seconds);
  std::printf("  scalar VM:   %8.3f s  (batched speedup %.2fx, "
              "framebuffers %s)\n",
              vh_scalar.seconds, vh_scalar.seconds / vh_batched.seconds,
              vh_identical ? "identical" : "MISMATCH");

  // SIMD A/B on the batched engine: the auto-resolved vector kernels
  // against the same SoA batch loops with SIMD forced off (cfg.simd = 0).
  // Same engine, same batch width — the delta isolates the PR 6 kernels.
  const VectorHeavyResult vh_soa =
      best_vh(gles2::ExecEngine::kBatchedVm, /*simd=*/0);
  const bool simd_identical = vh_soa.fb_hash == vh_batched.fb_hash;
  std::printf("  scalar SoA:  %8.3f s  (simd [%s] speedup %.2fx, "
              "framebuffers %s)\n",
              vh_soa.seconds,
              glsl::simd::LevelName(glsl::simd::Resolve(-1)),
              vh_soa.seconds / vh_batched.seconds,
              simd_identical ? "identical" : "MISMATCH");

  // Compiled-engine A/B: the per-link transpiled module against the batched
  // interpreter it falls back to. Same scene, same lanes; the first draw
  // pays the (content-hash cached) toolchain invocation, and min-of-reps
  // reporting picks the warm time. Framebuffers must hash identically.
  const VectorHeavyResult vh_compiled = best_vh(gles2::ExecEngine::kCompiled);
  const bool compiled_identical = vh_compiled.fb_hash == vh_batched.fb_hash;
  std::printf("  compiled:    %8.3f s  (speedup vs batched %.2fx, "
              "framebuffers %s)\n",
              vh_compiled.seconds,
              vh_batched.seconds / vh_compiled.seconds,
              compiled_identical ? "identical" : "MISMATCH");

  // Fragment-batch fill width sweep: wider batches amortize more dispatch
  // overhead and feed fuller SIMD spans, narrower ones waste fewer lanes on
  // partially covered edges. Output bytes must not depend on the width.
  std::printf("  batch-width sweep (batched VM, auto simd):\n");
  bool width_identical = true;
  double width_seconds[3] = {0.0, 0.0, 0.0};
  constexpr int kWidths[3] = {8, 16, 32};
  for (int wi = 0; wi < 3; ++wi) {
    const VectorHeavyResult r = best_vh(gles2::ExecEngine::kBatchedVm,
                                        /*simd=*/-1, kWidths[wi]);
    width_identical =
        width_identical && r.ok && r.fb_hash == vh_batched.fb_hash;
    width_seconds[wi] = r.seconds;
    std::printf("    width %2d:  %8.3f s  [%s]\n", kWidths[wi], r.seconds,
                r.fb_hash == vh_batched.fb_hash ? "identical" : "MISMATCH");
  }

  bench::JsonBenchWriter json("fig1_pipeline");
  json.Add("vm_sweep", vm.seconds, "s");
  json.Add("tree_sweep", tree.seconds, "s");
  json.Add("batched_sweep", batched.seconds, "s");
  json.Add("vm_speedup", tree.seconds / vm.seconds, "x");
  json.Add("batched_speedup_vs_scalar", vm.seconds / batched.seconds, "x");
  json.Add("coverage_ok",
           batched.ok && vm.ok && tree.ok ? 1.0 : 0.0, "bool");
  json.Add("vector_heavy_batched", vh_batched.seconds, "s");
  json.Add("vector_heavy_scalar", vh_scalar.seconds, "s");
  json.Add("vector_heavy_speedup", vh_scalar.seconds / vh_batched.seconds,
           "x");
  json.Add("vector_heavy_fb_hash", vh_batched.fb_hash, "hash");
  json.Add("vector_heavy_identical",
           vh_identical && vh_batched.ok && vh_scalar.ok ? 1.0 : 0.0,
           "bool");
  json.Add("vector_heavy_soa", vh_soa.seconds, "s");
  json.Add("simd_speedup_vs_soa", vh_soa.seconds / vh_batched.seconds, "x");
  json.Add("simd_identical",
           simd_identical && vh_soa.ok ? 1.0 : 0.0, "bool");
  json.Add("vector_heavy_compiled", vh_compiled.seconds, "s");
  json.Add("compiled_speedup_vs_batched",
           vh_batched.seconds / vh_compiled.seconds, "x");
  json.Add("compiled_identical",
           compiled_identical && vh_compiled.ok ? 1.0 : 0.0, "bool");
  json.Add("vector_heavy_w8", width_seconds[0], "s");
  json.Add("vector_heavy_w16", width_seconds[1], "s");
  json.Add("vector_heavy_w32", width_seconds[2], "s");
  json.Add("width_sweep_identical", width_identical ? 1.0 : 0.0, "bool");
  if (!json.Write()) {
    std::fprintf(stderr, "warning: could not write BENCH_fig1_pipeline.json\n");
  }

  // --- thread-scaling sweep over the tiled rasterizer's worker pool ---
  // Every thread count must produce byte-identical output (asserted by the
  // coverage/addressing validation inside RunSweep); only wall clock may
  // change. PR 1's recorded single-thread VM baseline was 0.248 s.
  constexpr double kPr1VmBaseline = 0.248;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::printf(
      "\ntiled shading worker scaling (same sweep, batched VM engine):\n");
  bench::JsonBenchWriter scaling("threads_scaling");
  scaling.Add("hardware_concurrency", hw, "threads");
  scaling.Add("pr1_vm_baseline", kPr1VmBaseline, "s");
  bool scaling_ok = true;
  double t1 = 0.0;
  std::vector<int> thread_counts{1, 2};
  if (!quick) {
    thread_counts.push_back(4);
    // hw may be 0 (unknown, per the standard) — only a real count beyond
    // the fixed sweep adds a datapoint.
    if (hw > 4) thread_counts.push_back(hw);
  }
  for (const int threads : thread_counts) {
    const SweepResult r =
        RunSweep(gles2::ExecEngine::kBatchedVm, threads, quick);
    scaling_ok = scaling_ok && r.ok;
    if (threads == 1) t1 = r.seconds;
    std::printf("  %2d thread(s): %8.3f s  (%.2fx vs 1-thread, %.2fx vs "
                "PR 1 baseline)  [coverage %s]\n",
                threads, r.seconds, t1 / r.seconds,
                kPr1VmBaseline / r.seconds, r.ok ? "ok" : "FAILURE");
    char name[32];
    std::snprintf(name, sizeof name, "vm_sweep_t%d", threads);
    scaling.Add(name, r.seconds, "s");
    if (threads == 4) {
      scaling.Add("t4_speedup_vs_pr1_baseline", kPr1VmBaseline / r.seconds,
                  "x");
    }
  }
  scaling.Add("coverage_ok", scaling_ok ? 1.0 : 0.0, "bool");
  if (!scaling.Write()) {
    std::fprintf(stderr,
                 "warning: could not write BENCH_threads_scaling.json\n");
  }

  const bool all_ok = batched.ok && vm.ok && tree.ok && scaling_ok &&
                      vh_identical && vh_batched.ok && vh_scalar.ok &&
                      simd_identical && vh_soa.ok && width_identical &&
                      compiled_identical && vh_compiled.ok;
  std::printf("\nresult: %s\n", all_ok ? "every size maps 1:1" : "FAILURE");
  return all_ok ? 0 : 1;
}
