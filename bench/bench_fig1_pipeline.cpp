// Experiment E4: the paper's Figure 1 / §II-A compute mapping — the
// graphics pipeline as a compute substrate. Verifies, across output sizes,
// that the screen-covering two-triangle quad shades exactly one fragment
// per output element and that the varying/coordinate path addresses each
// element exactly (no over/under-shading, no addressing drift at any size).
#include <cstdio>
#include <vector>

#include "compute/kernel.h"
#include "vc4/profiles.h"

int main() {
  using namespace mgpu;
  compute::DeviceOptions o;
  o.profile = vc4::IeeeExact();
  compute::Device d(o);

  std::printf("=== Paper Fig. 1: one fragment per output element ===\n\n");
  std::printf("%10s %10s %12s %14s\n", "elements", "fragments", "1:1?",
              "addressing");

  // The kernel writes its own linear index; reading it back verifies both
  // coverage (every element written exactly once) and addressing (the
  // index arrived intact through the rasterizer's varying interpolation).
  bool all_ok = true;
  for (const int n : {1, 2, 16, 100, 4096, 10000, 65536, 250000}) {
    compute::PackedBuffer out(d, compute::ElemType::kI32,
                              static_cast<std::size_t>(n));
    compute::Kernel k(d, {.name = "self_index",
                          .inputs = {},
                          .output = compute::ElemType::kI32,
                          .extra_decls = "",
                          .body = "float gp_kernel(vec2 p) { return "
                                  "gp_linear_index(); }\n"});
    (void)d.ConsumeWork();
    k.Run(out, {});
    const vc4::GpuWork w = d.ConsumeWork();
    std::vector<std::int32_t> back(static_cast<std::size_t>(n));
    out.Download(std::span<std::int32_t>(back));
    int bad = 0;
    for (int i = 0; i < n; ++i) {
      bad += back[static_cast<std::size_t>(i)] != i;
    }
    const std::uint64_t texels =
        static_cast<std::uint64_t>(out.tex_width()) * out.tex_height();
    const bool one_to_one = w.fragments == texels;
    std::printf("%10d %10llu %12s %10d bad\n", n,
                static_cast<unsigned long long>(w.fragments),
                one_to_one ? "yes" : "NO", bad);
    all_ok = all_ok && one_to_one && bad == 0;
  }

  std::printf("\npipeline stages exercised per dispatch (paper Fig. 1):\n");
  std::printf("  vertex shader (pass-through, challenge III-1) -> triangle "
              "assembly (2-triangle quad, III-2)\n");
  std::printf("  -> rasterizer (top-left fill rule, exactly-once coverage) "
              "-> fragment shader (the kernel)\n");
  std::printf("  -> framebuffer pack (Eq. 2) -> ReadPixels (challenge "
              "III-7)\n");
  std::printf("\nresult: %s\n", all_ok ? "every size maps 1:1" : "FAILURE");
  return all_ok ? 0 : 1;
}
