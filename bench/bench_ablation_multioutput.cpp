// Ablation A2 (paper §III-8): a fragment shader has exactly ONE output in
// ES 2.0 (gl_FragColor / gl_FragData[0]), so a kernel with M outputs must
// be split into M programs that each re-run the body. This bench measures
// the cost of the split against the single-output baseline and against an
// idealized fused kernel (what gl_FragData[N] would give on desktop GL).
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "compute/kernel.h"
#include "vc4/timing.h"

int main() {
  using namespace mgpu;
  compute::Device d;
  const vc4::CpuModel cpu = vc4::Arm1176();

  constexpr std::size_t kN = 65536;
  Rng rng(5);
  std::vector<float> v(kN);
  for (auto& x : v) x = rng.NextWorkloadFloat();

  compute::PackedBuffer in(d, compute::ElemType::kF32, kN);
  in.Upload(std::span<const float>(v));
  compute::PackedBuffer out_min(d, compute::ElemType::kF32, kN / 4);
  compute::PackedBuffer out_max(d, compute::ElemType::kF32, kN / 4);

  const char* kMultiBody = R"(
void gp_kernel_multi(vec2 gp_pos, out float o0, out float o1) {
  float i = gp_linear_index() * 4.0;
  float a = gp_fetch_u_src(i);
  float b = gp_fetch_u_src(i + 1.0);
  float c = gp_fetch_u_src(i + 2.0);
  float e = gp_fetch_u_src(i + 3.0);
  o0 = min(min(a, b), min(c, e));
  o1 = max(max(a, b), max(c, e));
}
)";

  std::printf("=== Ablation: multi-output kernel splitting (paper III-8) "
              "===\n\n");
  std::printf("workload: 4-wide min+max over %zu floats (two logical "
              "outputs)\n\n",
              kN);

  // Single-output baseline: min only.
  (void)d.ConsumeWork();
  {
    compute::Kernel k(d, {.name = "min_only",
                          .inputs = {{"u_src", compute::ElemType::kF32}},
                          .output = compute::ElemType::kF32,
                          .extra_decls = "",
                          .body = std::string(kMultiBody) +
                                  "float gp_kernel(vec2 p) { float o0; float "
                                  "o1; gp_kernel_multi(p, o0, o1); return "
                                  "o0; }\n"});
    k.Run(out_min, {&in});
  }
  const vc4::GpuWork single = d.ConsumeWork();

  // Split kernels: the framework's MultiKernel (2 programs, body re-run).
  {
    compute::MultiKernel mk(d, {.name = "minmax",
                                .inputs = {{"u_src", compute::ElemType::kF32}},
                                .outputs = {compute::ElemType::kF32,
                                            compute::ElemType::kF32},
                                .extra_decls = "",
                                .body = kMultiBody});
    mk.Run({&out_min, &out_max}, {&in});
  }
  const vc4::GpuWork split = d.ConsumeWork();

  const double t1 = vc4::GpuSeconds(d.profile(), cpu, single).total();
  const double t2 = vc4::GpuSeconds(d.profile(), cpu, split).total();
  // The desktop-GL ideal: one pass computing both (fragments and fetches of
  // the single pass, writes doubled — writes are free in this model).
  const double ideal = t1;

  std::printf("%-34s %10.3f ms   (1 program, 1 pass)\n",
              "single output (min only)", t1 * 1e3);
  std::printf("%-34s %10.3f ms   (2 programs, body re-executed)\n",
              "split into 2 programs (ES 2.0)", t2 * 1e3);
  std::printf("%-34s %10.3f ms   (hypothetical gl_FragData[2])\n",
              "fused ideal (desktop GL)", ideal * 1e3);
  std::printf("\nsplit overhead vs fused ideal: %.2fx (expected ~2x: every "
              "output pays the full body)\n",
              t2 / ideal);
  std::printf("fragments: single %llu, split %llu; fetches: single %llu, "
              "split %llu\n",
              static_cast<unsigned long long>(single.fragments),
              static_cast<unsigned long long>(split.fragments),
              static_cast<unsigned long long>(single.shader_ops.tmu),
              static_cast<unsigned long long>(split.shader_ops.tmu));
  std::printf("\nthe paper's note holds: most GPGPU kernels have a single "
              "output, where the\nlimitation costs nothing (all Rodinia "
              "kernels fit, per the paper).\n");
  const bool about_double = t2 / ideal > 1.6 && t2 / ideal < 2.6;
  return about_double ? 0 : 1;
}
