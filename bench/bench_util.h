// Shared benchmark plumbing: runs workloads through the simulator at
// calibration sizes, measures the interpreter's operation counters, and
// extrapolates to paper-scale workloads (DESIGN.md "Benchmark sizing note":
// per-fragment cost is constant for streaming kernels and affine in K for
// GEMM, so two calibration points determine the paper-scale counts exactly).
#ifndef MGPU_BENCH_BENCH_UTIL_H_
#define MGPU_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "compute/ops.h"
#include "compute/packing.h"
#include "cpuref/cpuref.h"
#include "vc4/timing.h"

namespace mgpu::bench {

// --- JSON capture ----------------------------------------------------------
// Benchmark mains append named metrics and write a BENCH_<name>.json next to
// the working directory, so CI (and the perf-trajectory tooling) can diff
// runs without scraping stdout.
class JsonBenchWriter {
 public:
  explicit JsonBenchWriter(std::string benchmark) : benchmark_(std::move(benchmark)) {}

  void Add(const std::string& name, double value, const std::string& unit) {
    rows_.push_back({name, unit, value});
  }

  // Writes BENCH_<benchmark>.json (or `path` when given). Returns false on
  // I/O failure.
  bool Write(const std::string& path = "") const {
    const std::string file =
        path.empty() ? "BENCH_" + benchmark_ + ".json" : path;
    std::FILE* f = std::fopen(file.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"benchmark\": \"%s\",\n  \"metrics\": [\n",
                 benchmark_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      // %.17g round-trips any double exactly — the CI gate compares
      // deterministic metrics (op counts, 32-bit framebuffer hashes)
      // bit-exactly, so the serialization must not round them.
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"unit\": \"%s\", \"value\": %.17g}%s\n",
                   rows_[i].name.c_str(), rows_[i].unit.c_str(),
                   rows_[i].value, i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    const bool ok = std::ferror(f) == 0;
    return std::fclose(f) == 0 && ok;
  }

 private:
  struct Row {
    std::string name;
    std::string unit;
    double value;
  };
  std::string benchmark_;
  std::vector<Row> rows_;
};

// Scales the linear parts of a measured workload by `factor` (streaming
// kernels: everything except compiles and draw calls scales with n).
inline vc4::GpuWork ScaleLinear(const vc4::GpuWork& w, double factor) {
  vc4::GpuWork out = w;
  auto scale = [factor](std::uint64_t v) {
    return static_cast<std::uint64_t>(static_cast<double>(v) * factor);
  };
  out.fragments = scale(w.fragments);
  out.shader_ops.alu = scale(w.shader_ops.alu);
  out.shader_ops.sfu = scale(w.shader_ops.sfu);
  out.shader_ops.sfu_trans = scale(w.shader_ops.sfu_trans);
  out.shader_ops.tmu = scale(w.shader_ops.tmu);
  out.shader_ops.tmu_miss = scale(w.shader_ops.tmu_miss);
  out.bytes_uploaded = scale(w.bytes_uploaded);
  out.bytes_readback = scale(w.bytes_readback);
  out.host_work.int_ops = scale(w.host_work.int_ops);
  out.host_work.loads = scale(w.host_work.loads);
  out.host_work.stores = scale(w.host_work.stores);
  out.host_work.iterations = scale(w.host_work.iterations);
  return out;
}

// Measures the element-wise add ("sum") kernel at a calibration size and
// extrapolates to n elements.
inline vc4::GpuWork MeasureSumWork(compute::Device& d, compute::ElemType t,
                                   std::uint64_t n) {
  constexpr std::size_t kCal = 4096;
  Rng rng(100);
  (void)d.ConsumeWork();
  if (t == compute::ElemType::kF32) {
    const auto a = rng.FloatVector(kCal, -100.0f, 100.0f);
    const auto b = rng.FloatVector(kCal, -100.0f, 100.0f);
    std::vector<float> out(kCal);
    compute::ops::AddF32(d, a, b, out);
  } else {
    const auto a = rng.IntVector(kCal, -1'000'000, 1'000'000);
    const auto b = rng.IntVector(kCal, -1'000'000, 1'000'000);
    std::vector<std::int32_t> out(kCal);
    compute::ops::AddI32(d, a, b, out);
  }
  vc4::GpuWork w = d.ConsumeWork();
  w = ScaleLinear(w, static_cast<double>(n) / kCal);
  w.program_compiles = 1;
  w.draw_calls = 1;
  return w;
}

// Measures GEMM at two calibration sizes, fits the per-fragment cost
// c(K) = a + b*K (exact: the kernel is one loop over K), and extrapolates
// to an n x n problem.
inline vc4::GpuWork MeasureGemmWork(compute::Device& d, compute::ElemType t,
                                    int n) {
  constexpr int kCal1 = 16;
  constexpr int kCal2 = 32;
  Rng rng(101);
  auto run = [&](int m) -> vc4::GpuWork {
    (void)d.ConsumeWork();
    const std::size_t e = static_cast<std::size_t>(m) * m;
    if (t == compute::ElemType::kF32) {
      const auto a = rng.FloatVector(e, -2.0f, 2.0f);
      const auto b = rng.FloatVector(e, -2.0f, 2.0f);
      std::vector<float> out(e);
      compute::ops::SgemmF32(d, m, a, b, out);
    } else {
      const auto a = rng.IntVector(e, -64, 64);
      const auto b = rng.IntVector(e, -64, 64);
      std::vector<std::int32_t> out(e);
      compute::ops::GemmI32(d, m, a, b, out);
    }
    return d.ConsumeWork();
  };
  const vc4::GpuWork w1 = run(kCal1);
  const vc4::GpuWork w2 = run(kCal2);

  auto fit = [&](std::uint64_t c1, std::uint64_t c2) -> double {
    // Per-fragment costs at the two K values.
    const double p1 = static_cast<double>(c1) / (kCal1 * kCal1);
    const double p2 = static_cast<double>(c2) / (kCal2 * kCal2);
    const double b = (p2 - p1) / (kCal2 - kCal1);
    const double a = p1 - b * kCal1;
    // Extrapolated total at size n.
    return (a + b * n) * static_cast<double>(n) * n;
  };

  vc4::GpuWork w;
  w.fragments = static_cast<std::uint64_t>(n) * n;
  w.vertices = 6;
  w.shader_ops.alu = static_cast<std::uint64_t>(
      fit(w1.shader_ops.alu, w2.shader_ops.alu));
  w.shader_ops.sfu = static_cast<std::uint64_t>(
      fit(w1.shader_ops.sfu, w2.shader_ops.sfu));
  w.shader_ops.sfu_trans = static_cast<std::uint64_t>(
      fit(w1.shader_ops.sfu_trans, w2.shader_ops.sfu_trans));
  w.shader_ops.tmu = static_cast<std::uint64_t>(
      fit(w1.shader_ops.tmu, w2.shader_ops.tmu));
  // Texture-cache misses do NOT extrapolate from small calibration sizes:
  // at n <= 32 both matrices fit in the 4 KB texture cache, while at the
  // paper's n = 1024 a column of B walks 1024 distinct lines (full miss)
  // and each fragment's A-row walk (n/8 = 128 lines) is evicted between
  // fragments (1-in-8 miss). Analytic counts per DESIGN.md:
  //   misses = n^3 (B) + n^3/8 (A).
  const double n3 = static_cast<double>(n) * n * n;
  w.shader_ops.tmu_miss = static_cast<std::uint64_t>(n3 * (1.0 + 1.0 / 8.0));
  if (w.shader_ops.tmu_miss > w.shader_ops.tmu) {
    w.shader_ops.tmu_miss = w.shader_ops.tmu;
  }
  // Three n x n matrices cross the bus; host packing for the same.
  w.bytes_uploaded = 2ull * n * n * 4ull;
  w.bytes_readback = 1ull * n * n * 4ull;
  w.host_work = compute::HostPackWork(t, 3ull * n * n);
  w.program_compiles = 1;
  w.draw_calls = 1;
  return w;
}

struct SpeedupRow {
  const char* benchmark;
  const char* type;
  double cpu_seconds;
  vc4::GpuTimeBreakdown gpu;
  double paper_speedup;

  [[nodiscard]] double speedup() const { return cpu_seconds / gpu.total(); }
};

inline void PrintSpeedupTable(const std::vector<SpeedupRow>& rows) {
  std::printf("%-8s %-6s %12s %12s %10s %10s %9s\n", "kernel", "type",
              "CPU [ms]", "GPU [ms]", "speedup", "paper", "delta");
  std::printf("%.*s\n", 74,
              "-------------------------------------------------------------"
              "-------------");
  for (const SpeedupRow& r : rows) {
    std::printf("%-8s %-6s %12.2f %12.2f %9.2fx %9.2fx %8.0f%%\n",
                r.benchmark, r.type, r.cpu_seconds * 1e3,
                r.gpu.total() * 1e3, r.speedup(), r.paper_speedup,
                (r.speedup() / r.paper_speedup - 1.0) * 100.0);
  }
}

}  // namespace mgpu::bench

#endif  // MGPU_BENCH_BENCH_UTIL_H_
