// Draw-storm benchmark: many *tiny* draws against a large render target.
// The Fig. 1 sweeps measure one big dispatch, where per-draw setup is noise;
// a GPGPU service at scale sees the opposite shape — thousands of small
// draws per second — and there the fixed per-draw tax dominates: tile-grid
// construction, worker-state setup, uniform mirroring. This benchmark is
// the regression guard for that tax (ISSUE 3): it times a storm of small
// uniform-repositioned triangles on the serial path and on the worker pool,
// and emits BENCH_draw_storm.json with both wall-clock and *deterministic*
// metrics (ALU op count, framebuffer checksum, serial/parallel equality)
// that CI's check_bench.py gate compares bit-exactly against the committed
// baseline.
//
// Usage: bench_draw_storm [--quick] [--draws N]
//   --quick: CI smoke size (fewer draws), same metric names.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "gles2/context.h"

namespace {

using namespace mgpu;
using namespace mgpu::gles2;

constexpr int kTargetSize = 2048;  // 32x32 tile grid: per-draw grid work is
                                   // visible, per-draw shading is tiny

constexpr char kVs[] = R"(
attribute vec2 a_pos;
uniform vec2 u_offset;
varying vec2 v_uv;
void main() {
  v_uv = a_pos * 40.0 + 0.5;
  gl_Position = vec4(a_pos + u_offset, 0.0, 1.0);
}
)";

constexpr char kFs[] = R"(
precision highp float;
varying vec2 v_uv;
uniform vec4 u_tint;
void main() {
  gl_FragColor = vec4(v_uv.x * u_tint.x, v_uv.y * u_tint.y, u_tint.z, 1.0);
}
)";

// One small triangle (~6 px legs on a 2048 target) repositioned per draw
// through u_offset.
constexpr float kTri[6] = {0.0f, 0.0f, 0.006f, 0.0f, 0.0f, 0.006f};

struct StormResult {
  double seconds = 0.0;
  std::uint64_t alu_ops = 0;
  std::uint32_t fb_hash = 0;
  bool draw_ok = true;
};

std::uint32_t Fnv1a(const std::vector<std::uint8_t>& bytes) {
  std::uint32_t h = 2166136261u;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 16777619u;
  }
  return h;
}

GLuint BuildProgram(gles2::Context& ctx) {
  const GLuint vs = ctx.CreateShader(GL_VERTEX_SHADER);
  ctx.ShaderSource(vs, kVs);
  ctx.CompileShader(vs);
  const GLuint fs = ctx.CreateShader(GL_FRAGMENT_SHADER);
  ctx.ShaderSource(fs, kFs);
  ctx.CompileShader(fs);
  const GLuint p = ctx.CreateProgram();
  ctx.AttachShader(p, vs);
  ctx.AttachShader(p, fs);
  ctx.LinkProgram(p);
  GLint ok = GL_FALSE;
  ctx.GetProgramiv(p, GL_LINK_STATUS, &ok);
  if (ok != GL_TRUE) {
    std::fprintf(stderr, "link failed: %s\n",
                 ctx.GetProgramInfoLog(p).c_str());
  }
  return p;
}

// Runs the storm: `draws` tiny triangles at deterministic pseudo-random
// positions, one GL draw call each. Timed region = the draw loop only (the
// per-draw setup tax under test), not context/program setup or readback.
StormResult RunStorm(int draws, int shader_threads,
                     gles2::ExecEngine engine = gles2::ExecEngine::kBatchedVm,
                     int simd = -1, std::uint64_t draw_budget = 0,
                     int vertex_batch = -1) {
  gles2::ContextConfig cfg;
  cfg.width = kTargetSize;
  cfg.height = kTargetSize;
  cfg.has_depth = false;
  cfg.shader_threads = shader_threads;
  cfg.exec_engine = engine;
  cfg.simd = simd;
  cfg.draw_budget = draw_budget;
  cfg.vertex_batch = vertex_batch;
  gles2::Context ctx(cfg);

  const GLuint prog = BuildProgram(ctx);
  ctx.UseProgram(prog);
  const GLint a_pos = ctx.GetAttribLocation(prog, "a_pos");
  const GLint u_offset = ctx.GetUniformLocation(prog, "u_offset");
  const GLint u_tint = ctx.GetUniformLocation(prog, "u_tint");
  ctx.EnableVertexAttribArray(static_cast<GLuint>(a_pos));
  ctx.VertexAttribPointer(static_cast<GLuint>(a_pos), 2, GL_FLOAT, GL_FALSE,
                          0, kTri);
  ctx.ClearColor(0.0f, 0.0f, 0.0f, 1.0f);
  ctx.Clear(GL_COLOR_BUFFER_BIT);

  StormResult r;
  Rng rng(42);
  // Under async submission (default-on) draws are enqueued, not executed, so
  // the timed region must drain the device: Finish() before the clock keeps
  // setup out, Finish() before the end stamp pulls execution in.
  ctx.Finish();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < draws; ++i) {
    // Every draw moves the triangle and retints it, so cached shading state
    // must pick up fresh uniforms each draw to stay correct.
    ctx.Uniform2f(u_offset, rng.NextFloat(-0.98f, 0.95f),
                  rng.NextFloat(-0.98f, 0.95f));
    ctx.Uniform4f(u_tint, rng.NextFloat01(), rng.NextFloat01(),
                  rng.NextFloat01(), 1.0f);
    ctx.DrawArrays(GL_TRIANGLES, 0, 3);
  }
  ctx.Finish();
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.draw_ok = ctx.GetError() == static_cast<GLenum>(GL_NO_ERROR);
  r.alu_ops = ctx.alu().counts().alu;

  std::vector<std::uint8_t> fb(
      static_cast<std::size_t>(kTargetSize) * kTargetSize * 4);
  ctx.ReadPixels(0, 0, kTargetSize, kTargetSize, GL_RGBA, GL_UNSIGNED_BYTE,
                 fb.data());
  r.fb_hash = Fnv1a(fb);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  int draws = 30000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      draws = 10000;
    } else if (std::strcmp(argv[i], "--draws") == 0 && i + 1 < argc) {
      draws = std::atoi(argv[++i]);
    }
  }

  std::printf("=== Draw storm: %d tiny draws on a %dx%d target ===\n\n",
              draws, kTargetSize, kTargetSize);

  // Timings are the min over 3 identical runs: the storm is short enough
  // that a single scheduler preemption skews one run by far more than the
  // CI gate's thresholds, and the min is the standard de-noiser. The
  // deterministic metrics are identical across runs by construction.
  constexpr int kReps = 3;
  auto best_of = [&](int threads,
                     gles2::ExecEngine engine = gles2::ExecEngine::kBatchedVm,
                     int simd = -1, std::uint64_t draw_budget = 0,
                     int vertex_batch = -1) {
    StormResult best =
        RunStorm(draws, threads, engine, simd, draw_budget, vertex_batch);
    for (int r = 1; r < kReps; ++r) {
      const StormResult again =
          RunStorm(draws, threads, engine, simd, draw_budget, vertex_batch);
      if (again.seconds < best.seconds) best = again;
    }
    return best;
  };

  const StormResult serial = best_of(/*shader_threads=*/1);
  std::printf("  serial (1 thread):   %8.3f s  (%8.0f draws/s, best of %d)\n",
              serial.seconds, draws / serial.seconds, kReps);

  const StormResult pooled = best_of(/*shader_threads=*/2);
  std::printf("  pooled (2 threads):  %8.3f s  (%8.0f draws/s, best of %d)\n",
              pooled.seconds, draws / pooled.seconds, kReps);

  // Same storm on the scalar VM: the per-draw dispatch tax the lane-batched
  // engine amortizes, measured on identical hardware in the same process.
  const StormResult scalar =
      best_of(/*shader_threads=*/1, gles2::ExecEngine::kBytecodeVm);
  std::printf("  scalar VM (1 thread):%8.3f s  (%8.0f draws/s, batched "
              "speedup %.2fx)\n",
              scalar.seconds, draws / scalar.seconds,
              scalar.seconds / serial.seconds);

  // Determinism invariants: the worker pool (and any per-draw state caching
  // behind it) must be invisible — same framebuffer bytes, same op counts —
  // and the batched engine must be byte-identical to the scalar VM.
  const bool identical = serial.fb_hash == pooled.fb_hash &&
                         serial.alu_ops == pooled.alu_ops;
  std::printf("  serial vs pooled:    %s (hash %08x vs %08x, alu %llu vs "
              "%llu)\n",
              identical ? "identical" : "MISMATCH", serial.fb_hash,
              pooled.fb_hash, static_cast<unsigned long long>(serial.alu_ops),
              static_cast<unsigned long long>(pooled.alu_ops));
  const bool batched_identical = serial.fb_hash == scalar.fb_hash &&
                                 serial.alu_ops == scalar.alu_ops;
  std::printf("  batched vs scalar:   %s (hash %08x vs %08x, alu %llu vs "
              "%llu)\n",
              batched_identical ? "identical" : "MISMATCH", serial.fb_hash,
              scalar.fb_hash, static_cast<unsigned long long>(serial.alu_ops),
              static_cast<unsigned long long>(scalar.alu_ops));

  // SIMD A/B: the same serial storm with the vector kernels forced off
  // (scalar SoA batch loops). Small draws mean mostly partial batches, so
  // this also guards the SIMD tail/masking paths under per-draw churn.
  const StormResult soa = best_of(/*shader_threads=*/1,
                                  gles2::ExecEngine::kBatchedVm, /*simd=*/0);
  const bool simd_identical = serial.fb_hash == soa.fb_hash &&
                              serial.alu_ops == soa.alu_ops;
  std::printf("  simd vs scalar SoA:  %s (%8.3f s SoA, simd speedup %.2fx)\n",
              simd_identical ? "identical" : "MISMATCH", soa.seconds,
              soa.seconds / serial.seconds);

  // Compiled-engine A/B: the same storm through the per-link transpiled
  // module. Tiny draws are the compiled engine's worst case — per-draw
  // dispatch tax unchanged, shading per draw minimal — so this leg prices
  // the fixed cost of entering native code (and, on the very first draw
  // ever, the cached toolchain invocation) rather than the SoA win.
  const StormResult compiled =
      best_of(/*shader_threads=*/1, gles2::ExecEngine::kCompiled);
  const bool compiled_identical = serial.fb_hash == compiled.fb_hash &&
                                  serial.alu_ops == compiled.alu_ops;
  std::printf("  compiled engine:     %s (%8.3f s, speedup %.2fx vs "
              "batched)\n",
              compiled_identical ? "identical" : "MISMATCH", compiled.seconds,
              serial.seconds / compiled.seconds);

  // Watchdog A/B: the robustness model keeps its transactional machinery
  // (per-pixel undo journaling) on every run, so the serial leg above IS
  // the watchdog-compiled-in-but-disabled number the CI gate tracks. This
  // leg additionally *enables* the per-draw ALU budget (set far above any
  // storm draw, so it never trips) to price the armed per-fragment budget
  // checks; it must stay byte-identical to the disabled run.
  const StormResult watchdog =
      best_of(/*shader_threads=*/1, gles2::ExecEngine::kBatchedVm,
              /*simd=*/-1, /*draw_budget=*/~0ull / 2);
  const bool watchdog_identical = serial.fb_hash == watchdog.fb_hash &&
                                  serial.alu_ops == watchdog.alu_ops;
  std::printf("  watchdog armed:      %s (%8.3f s, overhead %.2fx vs "
              "disabled)\n",
              watchdog_identical ? "identical" : "MISMATCH", watchdog.seconds,
              watchdog.seconds / serial.seconds);

  // Vertex A/B: the same storm with the lane-batched vertex stage forced
  // off (scalar per-vertex reference loop). Three vertices per draw is the
  // batched path's worst case — every draw is one 3-lane tail batch — so
  // this leg prices the gather/scatter overhead at minimum amortization and
  // pins the two vertex paths byte-identical under per-draw uniform churn.
  const StormResult scalar_vertex =
      best_of(/*shader_threads=*/1, gles2::ExecEngine::kBatchedVm,
              /*simd=*/-1, /*draw_budget=*/0, /*vertex_batch=*/0);
  const bool vertex_identical = serial.fb_hash == scalar_vertex.fb_hash &&
                                serial.alu_ops == scalar_vertex.alu_ops;
  std::printf("  scalar vertex stage: %s (%8.3f s, batched-vertex speedup "
              "%.2fx)\n",
              vertex_identical ? "identical" : "MISMATCH",
              scalar_vertex.seconds, scalar_vertex.seconds / serial.seconds);

  const bool ok = identical && batched_identical && simd_identical &&
                  watchdog_identical && compiled_identical &&
                  vertex_identical && serial.draw_ok && pooled.draw_ok &&
                  scalar.draw_ok && soa.draw_ok && watchdog.draw_ok &&
                  compiled.draw_ok && scalar_vertex.draw_ok;

  bench::JsonBenchWriter json("draw_storm");
  json.Add("draws", draws, "count");
  json.Add("serial_storm", serial.seconds, "s");
  json.Add("serial_draws_per_sec", draws / serial.seconds, "/s");
  json.Add("pooled_storm", pooled.seconds, "s");
  json.Add("scalar_vm_storm", scalar.seconds, "s");
  json.Add("batched_speedup", scalar.seconds / serial.seconds, "x");
  json.Add("soa_storm", soa.seconds, "s");
  json.Add("simd_speedup_vs_soa", soa.seconds / serial.seconds, "x");
  json.Add("simd_identical", simd_identical ? 1.0 : 0.0, "bool");
  json.Add("compiled_storm", compiled.seconds, "s");
  json.Add("compiled_speedup_vs_batched",
           serial.seconds / compiled.seconds, "x");
  json.Add("compiled_identical", compiled_identical ? 1.0 : 0.0, "bool");
  json.Add("watchdog_storm", watchdog.seconds, "s");
  json.Add("watchdog_overhead", watchdog.seconds / serial.seconds, "x");
  json.Add("watchdog_identical", watchdog_identical ? 1.0 : 0.0, "bool");
  json.Add("scalar_vertex_storm", scalar_vertex.seconds, "s");
  json.Add("vertex_batch_speedup",
           scalar_vertex.seconds / serial.seconds, "x");
  json.Add("vertex_batch_identical", vertex_identical ? 1.0 : 0.0, "bool");
  json.Add("alu_ops_per_draw",
           static_cast<double>(serial.alu_ops) / draws, "ops");
  json.Add("fb_hash", serial.fb_hash, "hash");
  json.Add("serial_pooled_identical", identical ? 1.0 : 0.0, "bool");
  json.Add("batched_scalar_identical", batched_identical ? 1.0 : 0.0, "bool");
  json.Add("draw_errors_ok",
           serial.draw_ok && pooled.draw_ok && scalar.draw_ok ? 1.0 : 0.0,
           "bool");
  if (!json.Write()) {
    std::fprintf(stderr, "warning: could not write BENCH_draw_storm.json\n");
  }

  std::printf("\nresult: %s\n", ok ? "ok" : "FAILURE");
  return ok ? 0 : 1;
}
