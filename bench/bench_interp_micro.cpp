// Micro-benchmark M2: simulator throughput on this machine — GLSL compile
// time, fragment-shader interpretation rate, and full kernel-dispatch rate.
// Documents the sim-vs-silicon gap DESIGN.md's sizing note relies on.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "compute/kernel.h"
#include "glsl/compile.h"
#include "glsl/interp.h"
#include "glsl/ir.h"
#include "glsl/vm.h"
#include "vc4/profiles.h"

namespace {

using namespace mgpu;

constexpr char kFragSrc[] = R"(
precision highp float;
uniform float u_x;
void main() {
  float acc = 0.0;
  for (int i = 0; i < 16; ++i) {
    acc += float(i) * u_x;
  }
  gl_FragColor = vec4(fract(acc));
}
)";

void BM_CompileFragmentShader(benchmark::State& state) {
  for (auto _ : state) {
    auto r = glsl::CompileGlsl(kFragSrc, glsl::Stage::kFragment);
    benchmark::DoNotOptimize(r.ok);
  }
}
BENCHMARK(BM_CompileFragmentShader);

// The per-fragment hot loop on both engines: the bytecode VM (production
// path) vs the tree-walking interpreter (oracle). The VM target is >= 2x.
void BM_FragmentInvocationVm(benchmark::State& state) {
  auto r = glsl::CompileGlsl(kFragSrc, glsl::Stage::kFragment);
  glsl::ExactAlu alu;
  glsl::VmExec exec(glsl::LowerToBytecode(*r.shader), alu);
  exec.GlobalAt(exec.GlobalSlot("u_x")).SetF(0, 0.37f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FragmentInvocationVm);

void BM_FragmentInvocationTree(benchmark::State& state) {
  auto r = glsl::CompileGlsl(kFragSrc, glsl::Stage::kFragment);
  glsl::ExactAlu alu;
  glsl::ShaderExec exec(*r.shader, alu);
  exec.GlobalAt(exec.GlobalSlot("u_x")).SetF(0, 0.37f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FragmentInvocationTree);

void KernelDispatchF32(benchmark::State& state, gles2::ExecEngine engine) {
  compute::DeviceOptions o;
  o.profile = vc4::IeeeExact();
  o.exec_engine = engine;
  compute::Device d(o);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> host(n);
  for (auto& x : host) x = rng.NextWorkloadFloat();
  compute::PackedBuffer in(d, compute::ElemType::kF32, n);
  compute::PackedBuffer out(d, compute::ElemType::kF32, n);
  in.Upload(std::span<const float>(host));
  compute::Kernel k(d, {.name = "saxpy1",
                        .inputs = {{"u_src", compute::ElemType::kF32}},
                        .output = compute::ElemType::kF32,
                        .extra_decls = "",
                        .body = "float gp_kernel(vec2 p) { return "
                                "gp_fetch_u_src(gp_linear_index()) * 2.0 + "
                                "1.0; }\n"});
  for (auto _ : state) {
    k.Run(out, {&in});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_KernelDispatchF32(benchmark::State& state) {
  KernelDispatchF32(state, gles2::ExecEngine::kBytecodeVm);
}
BENCHMARK(BM_KernelDispatchF32)->Arg(256)->Arg(4096)->Arg(16384);

void BM_KernelDispatchF32Tree(benchmark::State& state) {
  KernelDispatchF32(state, gles2::ExecEngine::kTreeWalk);
}
BENCHMARK(BM_KernelDispatchF32Tree)->Arg(4096);

void BM_TextureSampleNearest(benchmark::State& state) {
  gles2::Texture t;
  std::vector<std::uint8_t> px(64 * 64 * 4, 128);
  (void)t.TexImage2D(0, gles2::GL_RGBA, 64, 64, gles2::GL_RGBA,
                     gles2::GL_UNSIGNED_BYTE, px.data(), 4);
  (void)t.SetParameter(gles2::GL_TEXTURE_MIN_FILTER, gles2::GL_NEAREST);
  (void)t.SetParameter(gles2::GL_TEXTURE_MAG_FILTER, gles2::GL_NEAREST);
  float s = 0.0f;
  for (auto _ : state) {
    s += 0.013f;
    if (s > 1.0f) s -= 1.0f;
    benchmark::DoNotOptimize(t.Sample(s, 0.5f, 0.0f));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TextureSampleNearest);

}  // namespace

BENCHMARK_MAIN();
