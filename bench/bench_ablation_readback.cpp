// Ablation A1 (paper §III-7): the two readback strategies. ES 2.0 cannot
// read a texture into client memory; results must cross the framebuffer.
// Strategy A: render the kernel into an FBO-attached texture and ReadPixels
// from it directly ("careful kernel ordering" — the last kernel's output is
// already where ReadPixels looks). Strategy B: run an extra pass-through
// copy shader that blits the texture to another framebuffer first (needed
// when the value to read is an *intermediate* texture). This bench
// quantifies the extra pass with the timing model.
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "compute/kernel.h"
#include "vc4/timing.h"

namespace {

using namespace mgpu;
using gles2::GLuint;

// Raw texel blit: the paper's pass-through fragment shader
// (gl_FragColor = texture2D(src, uv)), run at GL level.
void BlitPass(compute::Device& d, GLuint src_tex, GLuint dst_tex, int w,
              int h) {
  gles2::Context& gl = d.gl();
  static const char* kVs =
      "attribute vec2 a_pos;\nvarying vec2 v_uv;\nvoid main() { v_uv = a_pos "
      "* 0.5 + 0.5; gl_Position = vec4(a_pos, 0.0, 1.0); }\n";
  static const char* kFs =
      "precision mediump float;\nvarying vec2 v_uv;\nuniform sampler2D "
      "u_src;\nvoid main() { gl_FragColor = texture2D(u_src, v_uv); }\n";
  const GLuint vs = gl.CreateShader(gles2::GL_VERTEX_SHADER);
  gl.ShaderSource(vs, kVs);
  gl.CompileShader(vs);
  const GLuint fs = gl.CreateShader(gles2::GL_FRAGMENT_SHADER);
  gl.ShaderSource(fs, kFs);
  gl.CompileShader(fs);
  const GLuint prog = gl.CreateProgram();
  gl.AttachShader(prog, vs);
  gl.AttachShader(prog, fs);
  gl.LinkProgram(prog);
  d.work().program_compiles += 1;
  gl.UseProgram(prog);

  GLuint fbo;
  gl.GenFramebuffers(1, &fbo);
  gl.BindFramebuffer(gles2::GL_FRAMEBUFFER, fbo);
  gl.FramebufferTexture2D(gles2::GL_FRAMEBUFFER, gles2::GL_COLOR_ATTACHMENT0,
                          gles2::GL_TEXTURE_2D, dst_tex, 0);
  gl.Viewport(0, 0, w, h);
  gl.ActiveTexture(gles2::GL_TEXTURE0);
  gl.BindTexture(gles2::GL_TEXTURE_2D, src_tex);
  gl.Uniform1i(gl.GetUniformLocation(prog, "u_src"), 0);
  const gles2::GLint loc = gl.GetAttribLocation(prog, "a_pos");
  gl.EnableVertexAttribArray(static_cast<GLuint>(loc));
  gl.VertexAttribPointer(static_cast<GLuint>(loc), 2, gles2::GL_FLOAT,
                         gles2::GL_FALSE, 0, d.quad_vertices());
  gl.DrawArrays(gles2::GL_TRIANGLES, 0, 6);
  gl.BindFramebuffer(gles2::GL_FRAMEBUFFER, 0);
  d.work().fragments += static_cast<std::uint64_t>(w) * h;
  d.work().draw_calls += 1;
  d.SyncShaderOps();
  gl.DeleteFramebuffers(1, &fbo);
  gl.DeleteProgram(prog);
  gl.DeleteShader(vs);
  gl.DeleteShader(fs);
}

}  // namespace

int main() {
  compute::Device d;
  const vc4::CpuModel cpu = vc4::Arm1176();

  std::printf("=== Ablation: readback strategies (paper III-7) ===\n\n");
  std::printf("%10s %14s %14s %10s\n", "elements", "direct [ms]",
              "copy-pass [ms]", "overhead");

  Rng rng(11);
  bool values_ok = true;
  for (const std::size_t n : {4096ul, 65536ul, 262144ul}) {
    std::vector<float> v(n);
    for (auto& x : v) x = rng.NextWorkloadFloat();

    compute::PackedBuffer in(d, compute::ElemType::kF32, n);
    compute::PackedBuffer out(d, compute::ElemType::kF32, n);
    compute::PackedBuffer copy(d, compute::ElemType::kF32, n);
    in.Upload(std::span<const float>(v));

    compute::Kernel work(d, {.name = "work",
                             .inputs = {{"u_src", compute::ElemType::kF32}},
                             .output = compute::ElemType::kF32,
                             .extra_decls = "",
                             .body = "float gp_kernel(vec2 p) { return "
                                     "gp_fetch_u_src(gp_linear_index()) * "
                                     "2.0; }\n"});
    (void)d.ConsumeWork();

    // Strategy A: kernel output read back directly.
    work.Run(out, {&in});
    std::vector<float> res_a(n);
    out.Download(std::span<float>(res_a));
    const vc4::GpuWork direct = d.ConsumeWork();

    // Strategy B: kernel, extra raw copy pass, read back the copy.
    work.Run(out, {&in});
    BlitPass(d, out.texture(), copy.texture(), out.tex_width(),
             out.tex_height());
    std::vector<float> res_b(n);
    copy.Download(std::span<float>(res_b));
    const vc4::GpuWork with_copy = d.ConsumeWork();

    for (std::size_t i = 0; i < n; ++i) {
      values_ok = values_ok && res_a[i] == res_b[i];
    }

    const double ta = vc4::GpuSeconds(d.profile(), cpu, direct).total();
    const double tb = vc4::GpuSeconds(d.profile(), cpu, with_copy).total();
    std::printf("%10zu %14.3f %14.3f %9.1f%%\n", n, ta * 1e3, tb * 1e3,
                (tb / ta - 1.0) * 100.0);
  }
  std::printf("\nraw copy preserves texel bytes exactly: %s\n",
              values_ok ? "yes" : "NO");
  std::printf("conclusion (matches the paper): order kernels so the final "
              "result lands in the\nreadback target and the extra copy "
              "shader disappears entirely.\n");
  return values_ok ? 0 : 1;
}
