// Ablation A3: where does the GPU start paying off? Sweeps the `sum`
// benchmark across sizes and prints modeled CPU vs GPU wall times (with the
// GPU's fixed costs — compile + draw overhead — included, as the paper's
// wall-time methodology requires). Small arrays lose to the constant
// overhead; the crossover sits where the paper's regime begins.
#include <cstdio>

#include "bench_util.h"
#include "compute/device.h"

int main() {
  using namespace mgpu;
  compute::Device d;
  const vc4::CpuModel cpu = vc4::Arm1176();

  std::printf("=== Size sweep: sum (int and float), CPU vs modeled GPU "
              "===\n\n");
  std::printf("%10s | %12s %12s %9s | %12s %12s %9s\n", "elements",
              "CPU int[ms]", "GPU int[ms]", "speedup", "CPU fp[ms]",
              "GPU fp[ms]", "speedup");

  // Measure per-element GPU cost once at the calibration size; the bench
  // then scales the linear terms and keeps fixed costs constant.
  const vc4::GpuWork unit_i =
      bench::MeasureSumWork(d, compute::ElemType::kI32, 1u << 20);
  const vc4::GpuWork unit_f =
      bench::MeasureSumWork(d, compute::ElemType::kF32, 1u << 20);

  double crossover_int = -1.0, crossover_fp = -1.0;
  for (int lg = 8; lg <= 22; ++lg) {
    const std::uint64_t n = 1ull << lg;
    const double f = static_cast<double>(n) / static_cast<double>(1u << 20);
    vc4::GpuWork wi = bench::ScaleLinear(unit_i, f);
    wi.program_compiles = 1;
    wi.draw_calls = 1;
    vc4::GpuWork wf = bench::ScaleLinear(unit_f, f);
    wf.program_compiles = 1;
    wf.draw_calls = 1;

    const double ci = vc4::CpuSeconds(cpu, cpuref::AddWorkI32(n));
    const double gi = vc4::GpuSeconds(d.profile(), cpu, wi).total();
    const double cf = vc4::CpuSeconds(cpu, cpuref::AddWorkF32(n));
    const double gf = vc4::GpuSeconds(d.profile(), cpu, wf).total();
    std::printf("%10llu | %12.3f %12.3f %8.2fx | %12.3f %12.3f %8.2fx\n",
                static_cast<unsigned long long>(n), ci * 1e3, gi * 1e3,
                ci / gi, cf * 1e3, gf * 1e3, cf / gf);
    if (crossover_int < 0 && ci > gi) crossover_int = static_cast<double>(n);
    if (crossover_fp < 0 && cf > gf) crossover_fp = static_cast<double>(n);
  }

  std::printf("\ncrossover (GPU starts winning): int at ~%.0fk elements, "
              "float at ~%.0fk\n",
              crossover_int / 1e3, crossover_fp / 1e3);
  std::printf("below the crossover the ~1 ms compile + API overhead "
              "dominates; the paper's 1M-element\nconfiguration sits well "
              "inside the winning regime (speedups flatten toward the "
              "asymptote).\n");
  return crossover_int > 0 && crossover_fp > 0 ? 0 : 1;
}
