// Vertex-storm benchmark: few draws, *many* vertices, near-zero fragment
// cost. The draw-storm bench prices the per-draw tax and the Fig. 1 sweeps
// price the fragment stage; neither says anything about the vertex stage,
// which before ISSUE 9 ran one scalar VM invocation per vertex regardless
// of engine. This bench is the regression guard for the lane-batched vertex
// path: a dense mesh of sub-pixel triangles whose vertex shader does real
// transform work (rotate, scale, trig, normalize) while the fragment shader
// is a passthrough, re-drawn over several animated frames so the vertex
// stage dominates wall clock. A/B legs hold the batched vertex stage
// byte-identical to the scalar per-vertex reference loop (and to the SIMD-
// off SoA tier and the compiled engine) via FNV framebuffer hashes and ALU
// op counts, and BENCH_vertex_storm.json records the speedup for CI's
// check_bench.py gate.
//
// Usage: bench_vertex_storm [--quick] [--tris N] [--frames N]
//   --quick: CI smoke size (fewer triangles/frames), same metric names.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "gles2/context.h"

namespace {

using namespace mgpu;
using namespace mgpu::gles2;

constexpr int kTargetSize = 512;  // small target: fragment work is noise,
                                  // the vertex stage is what's being timed

// Uniform control flow (no branches), so the compiled engine's vertex
// module is eligible and the lane-batched interpreter never diverges: the
// whole mesh rides the SoA/SIMD/JIT machinery. The work is deliberately
// trig- and normalize-heavy — the shapes the SIMD tiers and the transpiler
// accelerate. Each vertex orbits its triangle's shared center (a_pos) on a
// tiny per-corner circle (a_aux = corner phase, corner radius), so the
// vertex stage does real transform work while every triangle stays ~1 px:
// fragment cost remains noise no matter what the animation does.
constexpr char kVs[] = R"(
attribute vec2 a_pos;
attribute vec2 a_aux;
uniform vec4 u_anim;
varying vec3 v_shade;
void main() {
  float ang = u_anim.x + a_aux.x;
  float r = a_aux.y * (0.85 + 0.15 * sin(u_anim.y + a_aux.x * 3.0));
  vec2 p = a_pos + vec2(cos(ang), sin(ang)) * r;
  float w = 0.5 + 0.5 * sin(dot(p, p) * 19.0 + u_anim.z);
  v_shade = normalize(vec3(p * w + vec2(0.001, 0.002), 1.0 - 0.5 * w));
  gl_Position = vec4(p, 0.0, 1.0);
}
)";

constexpr char kFs[] = R"(
precision highp float;
varying vec3 v_shade;
void main() {
  gl_FragColor = vec4(v_shade * 0.5 + 0.5, 1.0);
}
)";

struct StormResult {
  double seconds = 0.0;
  std::uint64_t alu_ops = 0;
  std::uint32_t fb_hash = 0;
  bool draw_ok = true;
};

std::uint32_t Fnv1a(const std::vector<std::uint8_t>& bytes) {
  std::uint32_t h = 2166136261u;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 16777619u;
  }
  return h;
}

GLuint BuildProgram(gles2::Context& ctx) {
  const GLuint vs = ctx.CreateShader(GL_VERTEX_SHADER);
  ctx.ShaderSource(vs, kVs);
  ctx.CompileShader(vs);
  const GLuint fs = ctx.CreateShader(GL_FRAGMENT_SHADER);
  ctx.ShaderSource(fs, kFs);
  ctx.CompileShader(fs);
  const GLuint p = ctx.CreateProgram();
  ctx.AttachShader(p, vs);
  ctx.AttachShader(p, fs);
  ctx.LinkProgram(p);
  GLint ok = GL_FALSE;
  ctx.GetProgramiv(p, GL_LINK_STATUS, &ok);
  if (ok != GL_TRUE) {
    std::fprintf(stderr, "link failed: %s\n",
                 ctx.GetProgramInfoLog(p).c_str());
  }
  return p;
}

// Deterministic mesh: `tris` triangle centers scattered over clip space.
// All three vertices of a triangle share the center in a_pos; a_aux gives
// each corner its own phase (base phase + 120 degree spread, so the shaded
// corners form a real triangle) and a tiny radius (~1 px on a 512 target).
// The phases differ lane to lane, so the shader's trig inputs are never
// accidentally uniform for SIMD to skip.
void BuildMesh(int tris, std::vector<float>* pos, std::vector<float>* aux) {
  Rng rng(7);
  pos->reserve(static_cast<std::size_t>(tris) * 6);
  aux->reserve(static_cast<std::size_t>(tris) * 6);
  for (int t = 0; t < tris; ++t) {
    const float cx = rng.NextFloat(-0.9f, 0.9f);
    const float cy = rng.NextFloat(-0.9f, 0.9f);
    const float phase = rng.NextFloat(0.0f, 6.28318f);
    const float radius = rng.NextFloat(0.002f, 0.004f);
    for (int v = 0; v < 3; ++v) {
      pos->push_back(cx);
      pos->push_back(cy);
      aux->push_back(phase + 2.09439f * static_cast<float>(v));
      aux->push_back(radius);
    }
  }
}

// Runs the storm: `frames` animated full-mesh draws. Timed region = the
// draw loop only (vertex gather + shade + scatter + raster), not context,
// mesh, or program setup, and not readback.
StormResult RunStorm(int tris, int frames,
                     const std::vector<float>& pos,
                     const std::vector<float>& aux,
                     gles2::ExecEngine engine = gles2::ExecEngine::kBatchedVm,
                     int simd = -1, int vertex_batch = -1) {
  gles2::ContextConfig cfg;
  cfg.width = kTargetSize;
  cfg.height = kTargetSize;
  cfg.has_depth = false;
  cfg.shader_threads = 1;
  cfg.exec_engine = engine;
  cfg.simd = simd;
  cfg.vertex_batch = vertex_batch;
  gles2::Context ctx(cfg);

  const GLuint prog = BuildProgram(ctx);
  ctx.UseProgram(prog);
  const GLint a_pos = ctx.GetAttribLocation(prog, "a_pos");
  const GLint a_aux = ctx.GetAttribLocation(prog, "a_aux");
  const GLint u_anim = ctx.GetUniformLocation(prog, "u_anim");
  ctx.EnableVertexAttribArray(static_cast<GLuint>(a_pos));
  ctx.VertexAttribPointer(static_cast<GLuint>(a_pos), 2, GL_FLOAT, GL_FALSE,
                          0, pos.data());
  ctx.EnableVertexAttribArray(static_cast<GLuint>(a_aux));
  ctx.VertexAttribPointer(static_cast<GLuint>(a_aux), 2, GL_FLOAT, GL_FALSE,
                          0, aux.data());
  ctx.ClearColor(0.02f, 0.02f, 0.05f, 1.0f);
  ctx.Clear(GL_COLOR_BUFFER_BIT);

  StormResult r;
  // Async submission (default-on) defers execution; bracket the timed region
  // with Finish() so it measures execution, not enqueue.
  ctx.Finish();
  const auto t0 = std::chrono::steady_clock::now();
  for (int f = 0; f < frames; ++f) {
    // Every frame advances the animation uniforms, so cached shading state
    // must re-mirror them and the full vertex stage re-runs per frame.
    const float fa = 0.37f * static_cast<float>(f);
    ctx.Uniform4f(u_anim, fa, 1.3f * fa + 0.25f, 0.7f * fa - 1.0f, 0.0f);
    ctx.DrawArrays(GL_TRIANGLES, 0, tris * 3);
  }
  ctx.Finish();
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.draw_ok = ctx.GetError() == static_cast<GLenum>(GL_NO_ERROR);
  r.alu_ops = ctx.alu().counts().alu;

  std::vector<std::uint8_t> fb(
      static_cast<std::size_t>(kTargetSize) * kTargetSize * 4);
  ctx.ReadPixels(0, 0, kTargetSize, kTargetSize, GL_RGBA, GL_UNSIGNED_BYTE,
                 fb.data());
  r.fb_hash = Fnv1a(fb);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  int tris = 30000;
  int frames = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      tris = 10000;
      frames = 4;
    } else if (std::strcmp(argv[i], "--tris") == 0 && i + 1 < argc) {
      tris = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      frames = std::atoi(argv[++i]);
    }
  }
  const long long verts =
      static_cast<long long>(tris) * 3 * frames;

  std::printf("=== Vertex storm: %d tris x %d frames (%lld vertex shades) "
              "on a %dx%d target ===\n\n",
              tris, frames, verts, kTargetSize, kTargetSize);

  std::vector<float> pos, aux;
  BuildMesh(tris, &pos, &aux);

  // Min over 3 identical runs (same de-noiser as the draw storm); the
  // deterministic metrics are identical across runs by construction.
  constexpr int kReps = 3;
  auto best_of = [&](gles2::ExecEngine engine =
                         gles2::ExecEngine::kBatchedVm,
                     int simd = -1, int vertex_batch = -1) {
    StormResult best =
        RunStorm(tris, frames, pos, aux, engine, simd, vertex_batch);
    for (int r = 1; r < kReps; ++r) {
      const StormResult again =
          RunStorm(tris, frames, pos, aux, engine, simd, vertex_batch);
      if (again.seconds < best.seconds) best = again;
    }
    return best;
  };

  const StormResult batched = best_of();
  std::printf("  batched vertex:      %8.3f s  (%8.0f verts/s, best of %d)\n",
              batched.seconds, verts / batched.seconds, kReps);

  // The headline A/B: the identical storm with the vertex stage forced back
  // onto the scalar per-vertex reference loop. Same engine, same SIMD tier
  // for the fragment stage — the delta is purely the lane-batched vertex
  // path this bench exists to defend.
  const StormResult scalar_vertex =
      best_of(gles2::ExecEngine::kBatchedVm, /*simd=*/-1,
              /*vertex_batch=*/0);
  const bool vertex_identical = batched.fb_hash == scalar_vertex.fb_hash &&
                                batched.alu_ops == scalar_vertex.alu_ops;
  std::printf("  scalar vertex stage: %s (%8.3f s, batched-vertex speedup "
              "%.2fx)\n",
              vertex_identical ? "identical" : "MISMATCH",
              scalar_vertex.seconds,
              scalar_vertex.seconds / batched.seconds);

  // SIMD A/B: vector kernels off, scalar SoA batch loops on. Full 32-lane
  // vertex batches are the SIMD tiers' best case (the draw storm only ever
  // sees 3-lane tails), so this leg is where a vertex-plane SIMD regression
  // would actually show.
  const StormResult soa =
      best_of(gles2::ExecEngine::kBatchedVm, /*simd=*/0);
  const bool simd_identical = batched.fb_hash == soa.fb_hash &&
                              batched.alu_ops == soa.alu_ops;
  std::printf("  simd vs scalar SoA:  %s (%8.3f s SoA, simd speedup %.2fx)\n",
              simd_identical ? "identical" : "MISMATCH", soa.seconds,
              soa.seconds / batched.seconds);

  // Compiled-engine A/B: the vertex shader has uniform control flow, so the
  // per-link C++ module takes the whole mesh through RunBatchJit — the best
  // case for the transpiled path, mirrored against its worst case in the
  // draw storm.
  const StormResult compiled = best_of(gles2::ExecEngine::kCompiled);
  const bool compiled_identical = batched.fb_hash == compiled.fb_hash &&
                                  batched.alu_ops == compiled.alu_ops;
  std::printf("  compiled engine:     %s (%8.3f s, speedup %.2fx vs "
              "batched)\n",
              compiled_identical ? "identical" : "MISMATCH", compiled.seconds,
              batched.seconds / compiled.seconds);

  // A blank framebuffer would make every hash "identical" vacuously; require
  // visible coverage from the mesh.
  const bool coverage_ok = batched.fb_hash != 0 && batched.alu_ops > 0;

  const bool ok = vertex_identical && simd_identical && compiled_identical &&
                  coverage_ok && batched.draw_ok && scalar_vertex.draw_ok &&
                  soa.draw_ok && compiled.draw_ok;

  bench::JsonBenchWriter json("vertex_storm");
  json.Add("tris", tris, "count");
  json.Add("frames", frames, "count");
  json.Add("vertex_shades", static_cast<double>(verts), "count");
  json.Add("batched_storm", batched.seconds, "s");
  json.Add("verts_per_sec", verts / batched.seconds, "/s");
  json.Add("scalar_vertex_storm", scalar_vertex.seconds, "s");
  json.Add("vertex_batch_speedup",
           scalar_vertex.seconds / batched.seconds, "x");
  json.Add("vertex_batch_identical", vertex_identical ? 1.0 : 0.0, "bool");
  json.Add("soa_storm", soa.seconds, "s");
  json.Add("simd_speedup_vs_soa", soa.seconds / batched.seconds, "x");
  json.Add("simd_identical", simd_identical ? 1.0 : 0.0, "bool");
  json.Add("compiled_storm", compiled.seconds, "s");
  json.Add("compiled_speedup_vs_batched",
           batched.seconds / compiled.seconds, "x");
  json.Add("compiled_identical", compiled_identical ? 1.0 : 0.0, "bool");
  json.Add("alu_ops_per_vert",
           static_cast<double>(batched.alu_ops) / verts, "ops");
  json.Add("fb_hash", batched.fb_hash, "hash");
  json.Add("draw_errors_ok",
           batched.draw_ok && scalar_vertex.draw_ok && soa.draw_ok &&
                   compiled.draw_ok
               ? 1.0
               : 0.0,
           "bool");
  if (!json.Write()) {
    std::fprintf(stderr,
                 "warning: could not write BENCH_vertex_storm.json\n");
  }

  std::printf("\nresult: %s\n", ok ? "ok" : "FAILURE");
  return ok ? 0 : 1;
}
